package capping

import (
	"math"

	"capmaestro/internal/power"
	"capmaestro/internal/telemetry"
)

// settleBuckets size the settle-time histogram in control iterations: the
// paper's controller converges within a few 8 s control periods, so
// anything past ~8 iterations is pathological.
var settleBuckets = []float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32}

// controllerMetrics instruments one capping controller. Per-supply gauges
// are cached so the per-second sensing path does no map-key building when
// telemetry is on and nothing at all when it is off.
type controllerMetrics struct {
	enabled bool
	id      string

	budgetVec *telemetry.GaugeVec
	powerVec  *telemetry.GaugeVec
	budgetBy  map[string]*telemetry.Gauge
	powerBy   map[string]*telemetry.Gauge

	throttle   *telemetry.Gauge
	dcCap      *telemetry.Gauge
	violations *telemetry.Counter
	settle     *telemetry.Histogram
}

func newControllerMetrics(reg *telemetry.Registry, id string) controllerMetrics {
	if reg == nil {
		return controllerMetrics{}
	}
	if id == "" {
		id = "server"
	}
	return controllerMetrics{
		enabled: true,
		id:      id,
		budgetVec: reg.GaugeVec("capmaestro_capping_budget_watts",
			"AC budget assigned to each supply (+Inf = unbudgeted).", "server", "supply"),
		powerVec: reg.GaugeVec("capmaestro_capping_supply_power_watts",
			"Measured AC power per supply at the last sensor sample.", "server", "supply"),
		budgetBy: make(map[string]*telemetry.Gauge),
		powerBy:  make(map[string]*telemetry.Gauge),
		throttle: reg.GaugeVec("capmaestro_capping_throttle_level",
			"Node-manager power-cap throttling level in [0,1].", "server").With(id),
		dcCap: reg.GaugeVec("capmaestro_capping_dc_cap_watts",
			"DC cap last applied by the PI controller.", "server").With(id),
		violations: reg.CounterVec("capmaestro_capping_cap_violations_total",
			"Control iterations in which a supply exceeded its AC budget beyond tolerance.", "server").With(id),
		settle: reg.HistogramVec("capmaestro_capping_settle_iterations",
			"Control iterations from a budget change until every supply is back under budget.",
			settleBuckets, "server").With(id),
	}
}

func (m *controllerMetrics) budgetGauge(supplyID string) *telemetry.Gauge {
	if !m.enabled {
		return nil
	}
	g, ok := m.budgetBy[supplyID]
	if !ok {
		g = m.budgetVec.With(m.id, supplyID)
		m.budgetBy[supplyID] = g
	}
	return g
}

func (m *controllerMetrics) powerGauge(supplyID string) *telemetry.Gauge {
	if !m.enabled {
		return nil
	}
	g, ok := m.powerBy[supplyID]
	if !ok {
		g = m.powerVec.With(m.id, supplyID)
		m.powerBy[supplyID] = g
	}
	return g
}

// violationTolerance is the slack allowed before a supply over its budget
// counts as a cap violation: measurement noise and the node manager's
// settling dynamics put transient watts above the line even in a healthy
// loop.
func violationTolerance(budget power.Watts) power.Watts {
	return power.Watts(math.Max(1, 0.01*float64(budget)))
}
