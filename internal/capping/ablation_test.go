package capping

import (
	"testing"
	"time"

	"capmaestro/internal/power"
	"capmaestro/internal/server"
)

// TestAblationAverageErrorOvershootsTightSupply demonstrates why the
// paper's controller selects the *minimum* per-supply error (Figure 4): an
// averaging controller lets the tightly budgeted supply blow through its
// budget whenever the other supply has slack, which would overload the
// constrained feed.
func TestAblationAverageErrorOvershootsTightSupply(t *testing.T) {
	run := func(mode ErrorMode) power.Watts {
		srv := server.MustNew(server.Config{
			ID:    "s1",
			Model: power.DefaultServerModel(),
			Supplies: []server.Supply{
				{ID: "psA", Split: 0.5},
				{ID: "psB", Split: 0.5},
			},
		})
		srv.SetUtilization(1)
		c := MustNew(srv, Config{Errors: mode})
		c.SetBudget("psA", 400) // generous
		c.SetBudget("psB", 180) // tight
		for p := 0; p < 10; p++ {
			for s := 0; s < 8; s++ {
				srv.Step(time.Second)
				c.Sense()
			}
			c.Iterate()
		}
		b, _ := srv.SupplyACPower("psB")
		return b
	}
	minPower := run(ErrorModeMin)
	avgPower := run(ErrorModeAverage)
	if minPower > 182 {
		t.Errorf("min-error controller: psB %v exceeds its 180 W budget", minPower)
	}
	if avgPower < 200 {
		t.Errorf("average-error ablation should overshoot the 180 W budget, got %v", avgPower)
	}
}
