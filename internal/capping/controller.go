// Package capping implements CapMaestro's per-server capping controller
// (Section 4.2, Figure 4 of the paper): a proportional-integral feedback
// loop that enforces an individual AC power budget on each power supply of
// a server, using a node manager that can only cap the server's total DC
// power.
//
// Each control iteration:
//
//  1. computes, for every active supply, the error between its assigned AC
//     budget and its measured AC power;
//  2. selects the minimum error across supplies (the most conservative
//     correction, protecting the most constrained feed);
//  3. scales the error by the supply efficiency k (AC→DC) and by the number
//     of working supplies M (a correction on one supply implies an M-times
//     larger total-server correction, since load is shared);
//  4. adds the scaled error to the integrator, which stores the previously
//     desired DC cap; and
//  5. clips the desired cap to the node manager's controllable range and
//     applies it.
//
// Storing the clipped value back into the integrator provides anti-windup.
// The controller also runs the Section 5 regression-based demand estimator
// over its per-second sensor readings.
package capping

import (
	"errors"
	"math"
	"sort"

	"capmaestro/internal/power"
	"capmaestro/internal/server"
	"capmaestro/internal/telemetry"
)

// Node is the slice of a server the capping controller interacts with:
// IPMI-style sensors plus the node manager's DC cap. *server.Server
// implements it; a real deployment would back it with IPMI transport.
type Node interface {
	ReadSensors() server.Reading
	SetDCCap(power.Watts)
	DCCapRange() (lo, hi power.Watts)
	ActiveSupplyIDs() []string
}

// ErrorMode selects how the controller combines per-supply errors.
type ErrorMode int

// Error combination modes.
const (
	// ErrorModeMin selects the minimum (most conservative) error across
	// supplies, as the paper's controller does (Figure 4): the most
	// constrained supply governs, so no supply ever exceeds its budget.
	ErrorModeMin ErrorMode = iota
	// ErrorModeAverage averages errors across supplies. It exists as an
	// ablation: with unequal budgets it overshoots the tighter supply,
	// demonstrating why the paper's min-error design is required.
	ErrorModeAverage
)

// Config tunes a capping controller.
type Config struct {
	// K is the supply efficiency coefficient used to transform AC-domain
	// errors into the DC domain (DC = K × AC). Zero selects a typical 0.92.
	K float64
	// Errors selects the per-supply error combination; the zero value is
	// the paper's min-error rule.
	Errors ErrorMode
	// Gain scales the integral action; 1.0 applies the full scaled error
	// each iteration as the paper's controller does. Values in (0,1] trade
	// convergence speed for smoothness. Zero selects 1.0.
	Gain float64
	// DemandWindow is the number of per-second samples the demand
	// estimator keeps; zero selects the paper's 16.
	DemandWindow int

	// Telemetry registers the controller's metrics (per-supply budget and
	// measured power gauges, throttle and DC-cap gauges, cap-violation
	// counter, settle-time histogram) on the given registry. Nil disables
	// instrumentation at zero cost.
	Telemetry *telemetry.Registry
	// ID labels this controller's metrics with the server identity; only
	// used when Telemetry is set. Empty selects "server".
	ID string
}

// DefaultK is a typical AC→DC efficiency for a platinum supply.
const DefaultK = 0.92

// Unbudgeted marks a supply with no assigned budget; it does not constrain
// the controller.
var Unbudgeted = power.Watts(math.Inf(1))

// Controller enforces per-supply AC budgets on one server.
type Controller struct {
	node    Node
	k       float64
	gain    float64
	mode    ErrorMode
	budgets map[string]power.Watts
	est     *power.DemandEstimator

	integrator  power.Watts
	initialized bool
	lastReading server.Reading
	haveReading bool

	met         controllerMetrics
	settling    bool
	settleIters int
	violStreak  int
}

// New creates a controller for the given node.
func New(node Node, cfg Config) (*Controller, error) {
	if node == nil {
		return nil, errors.New("capping: nil node")
	}
	k := cfg.K
	if k == 0 {
		k = DefaultK
	}
	if k <= 0 || k > 1 {
		return nil, errors.New("capping: efficiency K must be in (0,1]")
	}
	gain := cfg.Gain
	if gain == 0 {
		gain = 1
	}
	if gain < 0 || gain > 1 {
		return nil, errors.New("capping: gain must be in (0,1]")
	}
	window := cfg.DemandWindow
	if window == 0 {
		window = power.DefaultDemandWindow
	}
	return &Controller{
		node:    node,
		k:       k,
		gain:    gain,
		mode:    cfg.Errors,
		budgets: make(map[string]power.Watts),
		est:     power.NewDemandEstimator(window),
		met:     newControllerMetrics(cfg.Telemetry, cfg.ID),
	}, nil
}

// MustNew is New but panics on error; for static fixtures.
func MustNew(node Node, cfg Config) *Controller {
	c, err := New(node, cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// SetBudget assigns an AC power budget to one supply. Pass Unbudgeted to
// remove the constraint.
func (c *Controller) SetBudget(supplyID string, budget power.Watts) {
	if math.IsInf(float64(budget), 1) {
		if _, had := c.budgets[supplyID]; had {
			delete(c.budgets, supplyID)
			c.met.budgetGauge(supplyID).Set(math.Inf(1))
		}
		return
	}
	if budget < 0 {
		budget = 0
	}
	prev, had := c.budgets[supplyID]
	c.budgets[supplyID] = budget
	c.met.budgetGauge(supplyID).Set(float64(budget))
	// A materially different budget starts a settle-time measurement; the
	// histogram records how many iterations the loop takes to pull every
	// supply back under its line.
	if c.met.enabled && (!had || math.Abs(float64(budget-prev)) > 1) {
		c.settling = true
		c.settleIters = 0
	}
}

// Budget returns the AC budget assigned to a supply (Unbudgeted if none).
func (c *Controller) Budget(supplyID string) power.Watts {
	if b, ok := c.budgets[supplyID]; ok {
		return b
	}
	return Unbudgeted
}

// BudgetedSupplies lists the supplies with assigned budgets, sorted.
func (c *Controller) BudgetedSupplies() []string {
	ids := make([]string, 0, len(c.budgets))
	for id := range c.budgets {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Sense takes one per-second sensor sample, feeding the demand estimator.
// The paper's prototype reads sensors every second and runs the control
// iteration every 8-second control period.
func (c *Controller) Sense() server.Reading {
	r := c.node.ReadSensors()
	c.est.Observe(r.TotalAC, r.Throttle)
	c.lastReading = r
	c.haveReading = true
	if c.met.enabled {
		c.met.throttle.Set(r.Throttle)
		for id, p := range r.SupplyAC {
			c.met.powerGauge(id).Set(float64(p))
		}
	}
	return r
}

// Demand reports the regression-estimated full-performance AC power demand
// of the server (Section 5). ok is false until enough samples exist.
func (c *Controller) Demand() (power.Watts, bool) { return c.est.Demand() }

// Iterate runs one PI control iteration using the most recent sensor
// sample (taking a fresh one if Sense has not been called) and applies the
// resulting DC cap to the node manager. It returns the applied cap.
func (c *Controller) Iterate() power.Watts {
	if !c.haveReading {
		c.Sense()
	}
	r := c.lastReading
	c.haveReading = false // force a fresh reading next iteration

	lo, hi := c.node.DCCapRange()
	if !c.initialized {
		// Start the integrator at the top of the controllable range so an
		// unbudgeted server runs uncapped.
		c.integrator = hi
		c.initialized = true
	}

	active := c.node.ActiveSupplyIDs()
	m := len(active)
	minErr := power.Watts(math.Inf(1))
	var errSum power.Watts
	var budgeted, violated int
	for _, id := range active {
		budget, ok := c.budgets[id]
		if !ok {
			continue // unbudgeted supply does not constrain
		}
		errW := budget - r.SupplyAC[id]
		errSum += errW
		budgeted++
		if errW < minErr {
			minErr = errW
		}
		if r.SupplyAC[id] > budget+violationTolerance(budget) {
			violated++
		}
	}
	if violated > 0 {
		c.violStreak++
	} else {
		c.violStreak = 0
	}
	if c.met.enabled {
		if violated > 0 {
			c.met.violations.Inc()
		}
		if c.settling {
			c.settleIters++
			if violated == 0 {
				c.met.settle.Observe(float64(c.settleIters))
				c.settling = false
			}
		}
	}
	if c.mode == ErrorModeAverage && budgeted > 0 {
		minErr = errSum / power.Watts(budgeted)
	}

	if math.IsInf(float64(minErr), 1) || m == 0 {
		// No budgeted active supplies: release the cap entirely.
		c.integrator = hi
	} else {
		// AC error on one supply ⇒ k×M times larger DC-domain correction
		// for the whole server (Figure 4, steps 2–3).
		c.integrator += power.Watts(c.gain) * minErr * power.Watts(c.k) * power.Watts(m)
		c.integrator = c.integrator.Clamp(lo, hi) // step 4 + anti-windup
	}
	c.node.SetDCCap(c.integrator)
	c.met.dcCap.Set(float64(c.integrator))
	return c.integrator
}

// DesiredDCCap exposes the integrator state (the cap last applied).
func (c *Controller) DesiredDCCap() power.Watts { return c.integrator }

// ViolationStreak counts consecutive Iterate calls in which at least one
// budgeted supply sat above its budget (plus tolerance). The SLO layer
// alerts on long streaks — a server the PI loop is failing to pull under
// its line.
func (c *Controller) ViolationStreak() int { return c.violStreak }
