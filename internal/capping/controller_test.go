package capping

import (
	"math"
	"testing"
	"time"

	"capmaestro/internal/power"
	"capmaestro/internal/server"
)

func testServer(t *testing.T, splitA float64) *server.Server {
	t.Helper()
	return server.MustNew(server.Config{
		ID:    "s1",
		Model: power.DefaultServerModel(),
		Supplies: []server.Supply{
			{ID: "psA", Split: splitA},
			{ID: "psB", Split: 1 - splitA},
		},
	})
}

// runLoop emulates the paper's cadence: per-second sensing, one control
// iteration per 8-second period, for the given number of periods.
func runLoop(c *Controller, srv *server.Server, periods int) {
	for p := 0; p < periods; p++ {
		for s := 0; s < 8; s++ {
			srv.Step(time.Second)
			c.Sense()
		}
		c.Iterate()
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Error("nil node should fail")
	}
	srv := testServer(t, 0.5)
	if _, err := New(srv, Config{K: 1.5}); err == nil {
		t.Error("K > 1 should fail")
	}
	if _, err := New(srv, Config{K: -0.5}); err == nil {
		t.Error("K < 0 should fail")
	}
	if _, err := New(srv, Config{Gain: 2}); err == nil {
		t.Error("gain > 1 should fail")
	}
	if _, err := New(srv, Config{Gain: -1}); err == nil {
		t.Error("gain < 0 should fail")
	}
	if _, err := New(srv, Config{}); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MustNew(nil, Config{})
}

func TestUnbudgetedServerRunsUncapped(t *testing.T) {
	srv := testServer(t, 0.5)
	srv.SetUtilization(1)
	c := MustNew(srv, Config{})
	runLoop(c, srv, 4)
	if got := srv.ACPower(); !power.ApproxEqual(got, 490, 1) {
		t.Errorf("unbudgeted power = %v, want uncapped ~490", got)
	}
}

func TestEnforcesSingleSupplyBudget(t *testing.T) {
	srv := testServer(t, 0.5)
	srv.SetUtilization(1)
	c := MustNew(srv, Config{})
	c.SetBudget("psB", 200)
	runLoop(c, srv, 6)
	b, _ := srv.SupplyACPower("psB")
	if b > 200+2 {
		t.Errorf("psB power %v exceeds 200 W budget", b)
	}
	if b < 190 {
		t.Errorf("psB power %v leaves too much budget unused", b)
	}
}

func TestMostConstrainedSupplyWins(t *testing.T) {
	// Reproduces the Figure 5 scenario: budget PS2 to 200 W, then give PS1
	// an even tighter 150 W budget; the controller must always satisfy the
	// more constrained supply.
	srv := testServer(t, 0.5)
	srv.SetUtilization(1)
	c := MustNew(srv, Config{})
	c.SetBudget("psA", 400)
	c.SetBudget("psB", 200)
	runLoop(c, srv, 6)
	bB, _ := srv.SupplyACPower("psB")
	if bB > 202 {
		t.Errorf("phase 1: psB %v exceeds 200 W", bB)
	}
	c.SetBudget("psA", 150)
	runLoop(c, srv, 6)
	bA, _ := srv.SupplyACPower("psA")
	bB, _ = srv.SupplyACPower("psB")
	if bA > 152 {
		t.Errorf("phase 2: psA %v exceeds 150 W", bA)
	}
	if bB > 200 {
		t.Errorf("phase 2: psB %v should drop with total load", bB)
	}
}

func TestSettlesWithinTwoControlPeriods(t *testing.T) {
	// Paper: "the power settles to within 5% of the assigned budgets
	// within two control periods (16 seconds)".
	srv := testServer(t, 0.5)
	srv.SetUtilization(1)
	c := MustNew(srv, Config{})
	runLoop(c, srv, 2) // warm up uncapped
	c.SetBudget("psB", 200)
	runLoop(c, srv, 2) // two control periods
	b, _ := srv.SupplyACPower("psB")
	if math.Abs(float64(b)-200) > 0.05*200 {
		t.Errorf("after 16s psB = %v, want within 5%% of 200", b)
	}
}

func TestUnequalSplitRespectsTightBudget(t *testing.T) {
	// With a 65/35 split, the B side draws 65% of server power; a tight
	// B-side budget must drive the whole server down.
	srv := testServer(t, 0.35)
	srv.SetUtilization(1)
	c := MustNew(srv, Config{})
	c.SetBudget("psA", 400)
	c.SetBudget("psB", 220)
	runLoop(c, srv, 8)
	bB, _ := srv.SupplyACPower("psB")
	if bB > 222 {
		t.Errorf("psB %v exceeds 220 W", bB)
	}
	total := srv.ACPower()
	want := 220 / 0.65
	if math.Abs(float64(total)-want) > 8 {
		t.Errorf("total power %v, want ~%0.f (budget/split)", total, want)
	}
}

func TestBudgetBelowFloorClipsAtCapMin(t *testing.T) {
	// A budget below what Pcap_min allows cannot be enforced; the
	// controller clips at the bottom of the controllable range rather than
	// winding up.
	srv := testServer(t, 0.5)
	srv.SetUtilization(1)
	c := MustNew(srv, Config{})
	c.SetBudget("psB", 50) // 50 W << 0.5 × 270
	runLoop(c, srv, 10)
	if got := srv.ACPower(); !power.ApproxEqual(got, 270, 2) {
		t.Errorf("power = %v, want clipped at CapMin 270", got)
	}
	lo, _ := srv.DCCapRange()
	if c.DesiredDCCap() != lo {
		t.Errorf("integrator %v should sit at range floor %v (anti-windup)", c.DesiredDCCap(), lo)
	}
}

func TestRecoversAfterBudgetRaised(t *testing.T) {
	srv := testServer(t, 0.5)
	srv.SetUtilization(1)
	c := MustNew(srv, Config{})
	c.SetBudget("psB", 150)
	runLoop(c, srv, 8)
	capped := srv.ACPower()
	if capped > 320 {
		t.Fatalf("setup: power %v should be capped", capped)
	}
	c.SetBudget("psB", Unbudgeted)
	runLoop(c, srv, 8)
	if got := srv.ACPower(); !power.ApproxEqual(got, 490, 2) {
		t.Errorf("power = %v, want recovery to ~490 after budget removed", got)
	}
}

func TestFailedSupplyIgnoredByController(t *testing.T) {
	// When the A cord fails, its (now meaningless) budget must not freeze
	// the controller; the surviving supply's budget governs.
	srv := testServer(t, 0.5)
	srv.SetUtilization(1)
	c := MustNew(srv, Config{})
	c.SetBudget("psA", 100)
	c.SetBudget("psB", 300)
	if err := srv.SetSupplyState("psA", server.SupplyFailed); err != nil {
		t.Fatal(err)
	}
	runLoop(c, srv, 8)
	bB, _ := srv.SupplyACPower("psB")
	if bB > 302 {
		t.Errorf("surviving supply %v exceeds its 300 W budget", bB)
	}
	if bB < 290 {
		t.Errorf("surviving supply %v under-uses its 300 W budget", bB)
	}
}

func TestNegativeBudgetClampsToZero(t *testing.T) {
	srv := testServer(t, 0.5)
	c := MustNew(srv, Config{})
	c.SetBudget("psA", -10)
	if got := c.Budget("psA"); got != 0 {
		t.Errorf("negative budget stored as %v, want 0", got)
	}
}

func TestBudgetAccessors(t *testing.T) {
	srv := testServer(t, 0.5)
	c := MustNew(srv, Config{})
	if c.Budget("psA") != Unbudgeted {
		t.Error("default budget should be Unbudgeted")
	}
	c.SetBudget("psB", 250)
	c.SetBudget("psA", 100)
	got := c.BudgetedSupplies()
	if len(got) != 2 || got[0] != "psA" || got[1] != "psB" {
		t.Errorf("budgeted supplies = %v", got)
	}
	c.SetBudget("psA", Unbudgeted)
	if got := c.BudgetedSupplies(); len(got) != 1 || got[0] != "psB" {
		t.Errorf("after removal: %v", got)
	}
}

func TestIterateWithoutSenseTakesFreshReading(t *testing.T) {
	srv := testServer(t, 0.5)
	srv.SetUtilization(1)
	c := MustNew(srv, Config{})
	c.SetBudget("psB", 200)
	// Call Iterate directly with no prior Sense: must not panic and must
	// begin converging.
	for i := 0; i < 10; i++ {
		c.Iterate()
		for s := 0; s < 8; s++ {
			srv.Step(time.Second)
		}
	}
	b, _ := srv.SupplyACPower("psB")
	if b > 205 {
		t.Errorf("psB %v exceeds budget without explicit Sense", b)
	}
}

func TestDemandEstimateWhileCapped(t *testing.T) {
	srv := testServer(t, 0.5)
	srv.SetUtilization(1)
	c := MustNew(srv, Config{})
	c.SetBudget("psB", 180)
	runLoop(c, srv, 6)
	d, ok := c.Demand()
	if !ok {
		t.Fatal("no demand estimate")
	}
	if math.Abs(float64(d)-490) > 20 {
		t.Errorf("capped-demand estimate %v, want ~490", d)
	}
}

func TestNoisySensorsStillConverge(t *testing.T) {
	srv := server.MustNew(server.Config{
		ID:    "s1",
		Model: power.DefaultServerModel(),
		Supplies: []server.Supply{
			{ID: "psA", Split: 0.45},
			{ID: "psB", Split: 0.55},
		},
		NoiseSigma: 2,
		NoiseSeed:  99,
	})
	srv.SetUtilization(1)
	c := MustNew(srv, Config{Gain: 0.7})
	c.SetBudget("psB", 210)
	runLoop(c, srv, 12)
	b, _ := srv.SupplyACPower("psB")
	if math.Abs(float64(b)-210) > 12 {
		t.Errorf("noisy convergence: psB = %v, want ~210", b)
	}
}
