// Package flightrec is the control plane's flight recorder: per-period
// distributed traces (room → rack → leaves) plus the allocator's per-node
// explain records, retained in a fixed-size ring buffer and served over
// the telemetry HTTP server for post-hoc inspection.
//
// The package follows the telemetry package's nil-safety contract: a nil
// *Recorder, *PeriodTrace, or *ActiveSpan no-ops on every method, so
// instrumentation call sites are unconditional and recording is free when
// disabled.
package flightrec

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"capmaestro/internal/core"
)

// TraceContext is the wire form of a trace: the period's trace ID and the
// span the receiver should parent its own spans under. It rides the RPC
// envelope so rack-side spans nest under the room's per-period root.
type TraceContext struct {
	TraceID  string `json:"trace_id"`
	ParentID string `json:"parent_id,omitempty"`
}

// Span is one timed operation within a period's trace. Spans form a tree
// through ParentID; the period root has an empty ParentID.
type Span struct {
	TraceID  string `json:"trace_id"`
	SpanID   string `json:"span_id"`
	ParentID string `json:"parent_id,omitempty"`
	// Name is the operation ("period", "gather", "rpc.gather",
	// "rack.apply", ...).
	Name string `json:"name"`
	// Node is the element the operation ran against (rack ID, "room", an
	// aggregator's tree ID).
	Node     string        `json:"node,omitempty"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	// Retries counts transport retries absorbed inside the span.
	Retries int `json:"retries,omitempty"`
	// Error carries the operation's failure, if any.
	Error string `json:"error,omitempty"`
}

// PeriodTrace collects the spans of one control period. It is safe for
// concurrent use: the room worker's parallel gather/push goroutines and
// remote span imports all append into it. A nil PeriodTrace no-ops.
type PeriodTrace struct {
	traceID string

	mu       sync.Mutex
	rng      *rand.Rand
	spans    []Span
	explains []core.NodeExplain
}

// idRand builds the ID source for one trace. math/rand is deliberate:
// span IDs need uniqueness within a recorder, not unpredictability.
var idSeed struct {
	mu   sync.Mutex
	rng  *rand.Rand
	init bool
}

func nextSeed() int64 {
	idSeed.mu.Lock()
	defer idSeed.mu.Unlock()
	if !idSeed.init {
		idSeed.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
		idSeed.init = true
	}
	return idSeed.rng.Int63()
}

const hexDigits = "0123456789abcdef"

func randID(rng *rand.Rand) string {
	var b [16]byte
	for i := 0; i < len(b); i += 8 {
		v := rng.Int63()
		for j := 0; j < 8; j++ {
			b[i+j] = hexDigits[v&0xf]
			v >>= 4
		}
	}
	return string(b[:])
}

// NewPeriodTrace starts the trace for one control period with a fresh
// trace ID.
func NewPeriodTrace() *PeriodTrace {
	rng := rand.New(rand.NewSource(nextSeed()))
	return &PeriodTrace{traceID: randID(rng), rng: rng}
}

// NewRemoteTrace starts a trace continuing an incoming TraceContext: spans
// recorded into it carry the remote trace ID, so they merge cleanly into
// the originator's trace when shipped back.
func NewRemoteTrace(tc *TraceContext) *PeriodTrace {
	if tc == nil || tc.TraceID == "" {
		return NewPeriodTrace()
	}
	rng := rand.New(rand.NewSource(nextSeed()))
	return &PeriodTrace{traceID: tc.TraceID, rng: rng}
}

// TraceID returns the trace's ID ("" on nil).
func (pt *PeriodTrace) TraceID() string {
	if pt == nil {
		return ""
	}
	return pt.traceID
}

// StartSpan opens a span under the given parent span ID ("" for the
// root). End the returned span to record it; an unended span is dropped.
func (pt *PeriodTrace) StartSpan(name, node, parentID string) *ActiveSpan {
	if pt == nil {
		return nil
	}
	pt.mu.Lock()
	id := randID(pt.rng)
	pt.mu.Unlock()
	return &ActiveSpan{
		pt: pt,
		span: Span{
			TraceID:  pt.traceID,
			SpanID:   id,
			ParentID: parentID,
			Name:     name,
			Node:     node,
			Start:    time.Now(),
		},
	}
}

// Import appends spans recorded elsewhere (a rack's side of the period,
// shipped back in the RPC response). Spans from a different trace are
// re-homed under this trace's ID so the record stays self-consistent.
func (pt *PeriodTrace) Import(spans []Span) {
	if pt == nil || len(spans) == 0 {
		return
	}
	pt.mu.Lock()
	defer pt.mu.Unlock()
	for _, s := range spans {
		s.TraceID = pt.traceID
		pt.spans = append(pt.spans, s)
	}
}

// Spans returns a copy of the spans recorded so far.
func (pt *PeriodTrace) Spans() []Span {
	if pt == nil {
		return nil
	}
	pt.mu.Lock()
	defer pt.mu.Unlock()
	out := make([]Span, len(pt.spans))
	copy(out, pt.spans)
	return out
}

func (pt *PeriodTrace) add(s Span) {
	pt.mu.Lock()
	pt.spans = append(pt.spans, s)
	pt.mu.Unlock()
}

// Explain implements core.ExplainSink, collecting the allocator's audit
// records alongside the spans. Safe for concurrent use; nil no-ops.
func (pt *PeriodTrace) Explain(e core.NodeExplain) {
	if pt == nil {
		return
	}
	pt.mu.Lock()
	pt.explains = append(pt.explains, e)
	pt.mu.Unlock()
}

// ExplainSink returns pt as a core.ExplainSink, or a nil interface when
// pt is nil — keeping the allocator on its explain-free path, since a
// non-nil interface holding a nil pointer would not.
func (pt *PeriodTrace) ExplainSink() core.ExplainSink {
	if pt == nil {
		return nil
	}
	return pt
}

// ImportExplains appends explain records produced elsewhere (a rack's
// local allocation, shipped back in the RPC response).
func (pt *PeriodTrace) ImportExplains(es []core.NodeExplain) {
	if pt == nil || len(es) == 0 {
		return
	}
	pt.mu.Lock()
	pt.explains = append(pt.explains, es...)
	pt.mu.Unlock()
}

// Explains returns a copy of the explain records collected so far.
func (pt *PeriodTrace) Explains() []core.NodeExplain {
	if pt == nil {
		return nil
	}
	pt.mu.Lock()
	defer pt.mu.Unlock()
	out := make([]core.NodeExplain, len(pt.explains))
	copy(out, pt.explains)
	return out
}

// ActiveSpan is an in-flight span. All methods no-op on nil, so call
// sites never need to guard on whether tracing is enabled.
type ActiveSpan struct {
	pt   *PeriodTrace
	mu   sync.Mutex
	span Span
	done bool
}

// ID returns the span's ID ("" on nil), for parenting child spans.
func (s *ActiveSpan) ID() string {
	if s == nil {
		return ""
	}
	return s.span.SpanID
}

// AddRetry counts one transport retry against the span.
func (s *ActiveSpan) AddRetry() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.span.Retries++
	s.mu.Unlock()
}

// End closes the span, tagging it with err (nil for success), and records
// it into the trace. End is idempotent; only the first call records.
func (s *ActiveSpan) End(err error) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return
	}
	s.done = true
	s.span.Duration = time.Since(s.span.Start)
	if err != nil {
		s.span.Error = err.Error()
	}
	sp := s.span
	s.mu.Unlock()
	s.pt.add(sp)
}

// Context plumbing: the trace and the current span travel through
// context.Context, so local (in-process) RPC clients share the room's
// PeriodTrace while TCP clients serialize a TraceContext instead.

type traceKey struct{}
type spanKey struct{}
type parentKey struct{}

// ContextWithSpan returns ctx carrying the trace and the given span as
// the current one. A nil trace returns ctx unchanged.
func ContextWithSpan(ctx context.Context, pt *PeriodTrace, span *ActiveSpan) context.Context {
	if pt == nil {
		return ctx
	}
	ctx = context.WithValue(ctx, traceKey{}, pt)
	return context.WithValue(ctx, spanKey{}, span)
}

// ContextWithRemote returns ctx carrying pt and the remote parent span ID
// new spans should nest under — the span on the originating side of the
// transport. A nil trace returns ctx unchanged.
func ContextWithRemote(ctx context.Context, pt *PeriodTrace, parentID string) context.Context {
	if pt == nil {
		return ctx
	}
	ctx = context.WithValue(ctx, traceKey{}, pt)
	return context.WithValue(ctx, parentKey{}, parentID)
}

// ParentIDFrom returns the span ID new spans on ctx should parent under:
// the current local span when one is active, else the remote parent ID
// ("" when ctx carries neither).
func ParentIDFrom(ctx context.Context) string {
	if s := SpanFrom(ctx); s != nil {
		return s.ID()
	}
	p, _ := ctx.Value(parentKey{}).(string)
	return p
}

// TraceFrom returns the trace carried by ctx, or nil.
func TraceFrom(ctx context.Context) *PeriodTrace {
	pt, _ := ctx.Value(traceKey{}).(*PeriodTrace)
	return pt
}

// SpanFrom returns the current span carried by ctx, or nil.
func SpanFrom(ctx context.Context) *ActiveSpan {
	s, _ := ctx.Value(spanKey{}).(*ActiveSpan)
	return s
}

// WireContext extracts the TraceContext a transport should put on the
// wire for the current ctx, or nil when tracing is off.
func WireContext(ctx context.Context) *TraceContext {
	pt := TraceFrom(ctx)
	if pt == nil {
		return nil
	}
	return &TraceContext{TraceID: pt.traceID, ParentID: SpanFrom(ctx).ID()}
}
