package flightrec

import (
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Handler serves the recorder's debug endpoints:
//
//	/debug/periods       — JSON list of period summaries, newest first
//	/debug/periods/{id}  — one full record (span tree + explains)
//	/debug/trace.json    — all retained spans in Chrome trace-event
//	                       format, loadable in Perfetto / chrome://tracing
//
// Mount it on a telemetry server under "/debug/periods",
// "/debug/periods/" and "/debug/trace.json".
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		switch {
		case req.URL.Path == "/debug/trace.json":
			r.serveChromeTrace(w)
		case req.URL.Path == "/debug/periods":
			writeJSON(w, r.Summaries())
		case strings.HasPrefix(req.URL.Path, "/debug/periods/"):
			r.servePeriod(w, strings.TrimPrefix(req.URL.Path, "/debug/periods/"))
		default:
			http.NotFound(w, req)
		}
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = encodeJSON(w, v)
}

func encodeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func (r *Recorder) servePeriod(w http.ResponseWriter, rest string) {
	id, err := strconv.ParseUint(rest, 10, 64)
	if err != nil {
		http.Error(w, "bad period id", http.StatusBadRequest)
		return
	}
	rec, ok := r.Get(id)
	if !ok {
		http.Error(w, "period not retained", http.StatusNotFound)
		return
	}
	writeJSON(w, rec)
}

// chromeEvent is one entry of the Chrome trace-event format. Timestamps
// and durations are microseconds; "X" is a complete (timed) event, "M" a
// metadata event.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Cat  string         `json:"cat,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
	DisplayUnit string        `json:"displayTimeUnit"`
}

func (r *Recorder) serveChromeTrace(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/json")
	_ = r.WriteChromeTrace(w)
}

// WriteChromeTrace flattens every retained record's spans into one
// Chrome trace-event file (the /debug/trace.json payload), so callers
// without an HTTP server — CI failure hooks dumping artifacts, mainly —
// can persist the same trace. Each distinct span Node becomes a named
// "thread" so the viewer lays the room row above the per-rack rows;
// span nesting within a row comes from time containment, which the
// parent/child timing guarantees.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	recs := r.Records()
	var spans []Span
	for i := range recs {
		spans = append(spans, recs[i].Spans...)
	}
	out := chromeTrace{DisplayUnit: "ms", TraceEvents: []chromeEvent{}}
	if len(spans) == 0 {
		return encodeJSON(w, out)
	}

	// Stable thread numbering: sorted node names, with the room-side
	// coordinator first if present.
	nodeSet := make(map[string]bool)
	for _, s := range spans {
		nodeSet[threadName(s)] = true
	}
	nodes := make([]string, 0, len(nodeSet))
	for n := range nodeSet {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	tid := make(map[string]int, len(nodes))
	for i, n := range nodes {
		tid[n] = i + 1
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: i + 1,
			Args: map[string]any{"name": n},
		})
	}

	// Rebase timestamps to the earliest span so the viewer opens at t=0.
	base := spans[0].Start
	for _, s := range spans {
		if s.Start.Before(base) {
			base = s.Start
		}
	}
	for _, s := range spans {
		args := map[string]any{
			"trace_id": s.TraceID,
			"span_id":  s.SpanID,
		}
		if s.ParentID != "" {
			args["parent_id"] = s.ParentID
		}
		if s.Retries > 0 {
			args["retries"] = s.Retries
		}
		if s.Error != "" {
			args["error"] = s.Error
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: s.Name,
			Ph:   "X",
			Ts:   float64(s.Start.Sub(base).Nanoseconds()) / 1e3,
			Dur:  float64(s.Duration.Nanoseconds()) / 1e3,
			Pid:  1,
			Tid:  tid[threadName(s)],
			Cat:  "period",
			Args: args,
		})
	}
	return encodeJSON(w, out)
}

func threadName(s Span) string {
	if s.Node != "" {
		return s.Node
	}
	return "control"
}
