package flightrec

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var pt *PeriodTrace
	var rec *Recorder
	sp := pt.StartSpan("x", "n", "")
	sp.AddRetry()
	sp.End(nil)
	if sp.ID() != "" || pt.TraceID() != "" || pt.Spans() != nil {
		t.Error("nil trace must be inert")
	}
	pt.Import([]Span{{Name: "x"}})
	if rec.Enabled() {
		t.Error("nil recorder reports enabled")
	}
	rec.Add(PeriodRecord{})
	if _, ok := rec.Get(0); ok {
		t.Error("nil recorder returned a record")
	}
	if rec.Records() != nil || rec.Summaries() == nil && false {
		t.Error("nil recorder returned records")
	}
	ctx := ContextWithSpan(context.Background(), nil, nil)
	if TraceFrom(ctx) != nil || SpanFrom(ctx) != nil || WireContext(ctx) != nil {
		t.Error("nil trace leaked into context")
	}
}

func TestSpanTree(t *testing.T) {
	pt := NewPeriodTrace()
	if len(pt.TraceID()) != 16 {
		t.Fatalf("trace ID %q, want 16 hex chars", pt.TraceID())
	}
	root := pt.StartSpan("period", "room", "")
	child := pt.StartSpan("gather", "room", root.ID())
	child.AddRetry()
	child.AddRetry()
	child.End(errors.New("boom"))
	root.End(nil)
	root.End(nil) // idempotent

	spans := pt.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	byName := map[string]Span{}
	for _, s := range spans {
		byName[s.Name] = s
		if s.TraceID != pt.TraceID() {
			t.Errorf("span %s trace %q != %q", s.Name, s.TraceID, pt.TraceID())
		}
	}
	g := byName["gather"]
	if g.ParentID != byName["period"].SpanID {
		t.Error("child not parented to root")
	}
	if g.Retries != 2 || g.Error != "boom" {
		t.Errorf("child = %+v, want 2 retries and error", g)
	}
	if byName["period"].ParentID != "" {
		t.Error("root has a parent")
	}
}

func TestRemoteTraceAndImport(t *testing.T) {
	pt := NewPeriodTrace()
	root := pt.StartSpan("period", "room", "")
	wire := WireContext(ContextWithSpan(context.Background(), pt, root))
	if wire.TraceID != pt.TraceID() || wire.ParentID != root.ID() {
		t.Fatalf("wire context %+v", wire)
	}

	remote := NewRemoteTrace(wire)
	if remote.TraceID() != pt.TraceID() {
		t.Fatal("remote trace did not adopt the incoming trace ID")
	}
	rsp := remote.StartSpan("rack.gather", "rack-1", wire.ParentID)
	rsp.End(nil)

	pt.Import(remote.Spans())
	root.End(nil)
	spans := pt.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans after import, want 2", len(spans))
	}
	for _, s := range spans {
		if s.Name == "rack.gather" && s.ParentID != root.ID() {
			t.Error("imported rack span lost its parent")
		}
	}

	if NewRemoteTrace(nil).TraceID() == "" {
		t.Error("nil wire context should still start a usable trace")
	}
}

func TestRecorderRing(t *testing.T) {
	r := NewRecorder(3)
	for i := 0; i < 5; i++ {
		id := r.Add(PeriodRecord{TraceID: "t", Label: "room"})
		if id != uint64(i) {
			t.Fatalf("record %d got ID %d", i, id)
		}
	}
	recs := r.Records()
	if len(recs) != 3 || recs[0].ID != 2 || recs[2].ID != 4 {
		t.Fatalf("ring holds %+v, want IDs 2..4", recs)
	}
	if _, ok := r.Get(1); ok {
		t.Error("evicted record still retrievable")
	}
	if rec, ok := r.Get(3); !ok || rec.ID != 3 {
		t.Errorf("Get(3) = %+v, %v", rec, ok)
	}
	sums := r.Summaries()
	if len(sums) != 3 || sums[0].ID != 4 {
		t.Fatalf("summaries %+v, want newest (4) first", sums)
	}
	if NewRecorder(0).ring == nil || len(NewRecorder(-1).ring) != DefaultBufferSize {
		t.Error("non-positive size should use the default")
	}
}

func TestHTTPEndpoints(t *testing.T) {
	r := NewRecorder(4)
	pt := NewPeriodTrace()
	root := pt.StartSpan("period", "room", "")
	rack := pt.StartSpan("rpc.gather", "rack-1", root.ID())
	rack.End(nil)
	root.End(nil)
	r.Add(PeriodRecord{
		TraceID: pt.TraceID(), Start: time.Now(), Duration: time.Millisecond,
		Label: "room", Spans: pt.Spans(),
	})
	h := r.Handler()

	get := func(path string) (int, string) {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest("GET", path, nil))
		return w.Code, w.Body.String()
	}

	code, body := get("/debug/periods")
	if code != 200 {
		t.Fatalf("/debug/periods -> %d", code)
	}
	var sums []PeriodSummary
	if err := json.Unmarshal([]byte(body), &sums); err != nil || len(sums) != 1 || sums[0].Spans != 2 {
		t.Fatalf("summaries body %s (err %v)", body, err)
	}

	code, body = get("/debug/periods/0")
	if code != 200 || !strings.Contains(body, "rpc.gather") {
		t.Fatalf("/debug/periods/0 -> %d: %s", code, body)
	}
	if code, _ := get("/debug/periods/99"); code != 404 {
		t.Errorf("missing period -> %d, want 404", code)
	}
	if code, _ := get("/debug/periods/xyz"); code != 400 {
		t.Errorf("bad period id -> %d, want 400", code)
	}

	code, body = get("/debug/trace.json")
	if code != 200 {
		t.Fatalf("/debug/trace.json -> %d", code)
	}
	var ct struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &ct); err != nil {
		t.Fatalf("trace.json not valid JSON: %v", err)
	}
	var meta, complete int
	for _, ev := range ct.TraceEvents {
		switch ev["ph"] {
		case "M":
			meta++
		case "X":
			complete++
		}
	}
	// Two threads (room, rack-1) and two timed spans.
	if meta != 2 || complete != 2 {
		t.Errorf("trace.json has %d metadata + %d complete events, want 2+2: %s", meta, complete, body)
	}
}
