package flightrec

import (
	"sync"
	"time"

	"capmaestro/internal/core"
)

// DefaultBufferSize is the ring capacity used when a non-positive size is
// requested.
const DefaultBufferSize = 64

// PeriodRecord is one control period's complete flight-recorder entry:
// the span tree plus the allocator's per-node explain records.
type PeriodRecord struct {
	// ID is the recorder-assigned sequence number (monotonic; gaps never
	// occur, but old IDs fall out of the ring).
	ID       uint64        `json:"id"`
	TraceID  string        `json:"trace_id"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	// Label distinguishes record sources when several components share a
	// recorder (e.g. "room", a simulator phase).
	Label string `json:"label,omitempty"`
	// Err is the period-level failure, if the period did not complete.
	Err string `json:"error,omitempty"`
	// GatherErrors / ApplyErrors count racks that failed each phase.
	GatherErrors int `json:"gather_errors,omitempty"`
	ApplyErrors  int `json:"apply_errors,omitempty"`
	// BudgetsHeld counts racks whose pushes were held (stale or never
	// gathered).
	BudgetsHeld int  `json:"budgets_held,omitempty"`
	Infeasible  bool `json:"infeasible,omitempty"`

	// Fleet is the period's fleet observability digest, reduced to its
	// headline numbers (see internal/fleetobs). Present when the recording
	// worker rolls up digests.
	Fleet *FleetNote `json:"fleet,omitempty"`

	Spans    []Span             `json:"spans"`
	Explains []core.NodeExplain `json:"explains,omitempty"`
	// Annotations are events attached to the period after it was
	// recorded — e.g. SLO alert transitions evaluated from its data.
	Annotations []Annotation `json:"annotations,omitempty"`
}

// FleetNote annotates a period with the fleet digest's headline numbers.
// It mirrors fleetobs.DigestSummary field-for-field without importing it,
// keeping flightrec dependency-light.
type FleetNote struct {
	Racks              int     `json:"racks"`
	PowerWatts         float64 `json:"power_watts"`
	BudgetWatts        float64 `json:"budget_watts"`
	HeadroomWatts      float64 `json:"headroom_watts"`
	WorstHeadroomWatts float64 `json:"worst_headroom_watts"`
	WorstHeadroomRack  string  `json:"worst_headroom_rack,omitempty"`
	ViolatingRacks     int     `json:"violating_racks,omitempty"`
	OutlierRacks       int     `json:"outlier_racks,omitempty"`
}

// Annotation is a timestamped note attached to a period record, such as
// an alert firing or resolving.
type Annotation struct {
	Time time.Time `json:"time"`
	// Kind groups annotations ("alert-firing", "alert-resolved", ...).
	Kind string `json:"kind"`
	Text string `json:"text"`
}

// PeriodSummary is the list-view projection of a PeriodRecord, served by
// /debug/periods.
type PeriodSummary struct {
	ID           uint64        `json:"id"`
	TraceID      string        `json:"trace_id"`
	Start        time.Time     `json:"start"`
	Duration     time.Duration `json:"duration_ns"`
	Label        string        `json:"label,omitempty"`
	Err          string        `json:"error,omitempty"`
	GatherErrors int           `json:"gather_errors,omitempty"`
	ApplyErrors  int           `json:"apply_errors,omitempty"`
	BudgetsHeld  int           `json:"budgets_held,omitempty"`
	Infeasible   bool          `json:"infeasible,omitempty"`
	Spans        int           `json:"spans"`
	Explains     int           `json:"explains"`
	Annotations  int           `json:"annotations,omitempty"`
}

// Recorder retains the last N PeriodRecords in a fixed-size ring buffer.
// It is safe for concurrent use, and a nil Recorder no-ops (Enabled
// reports false), so components take a *Recorder unconditionally.
type Recorder struct {
	mu   sync.Mutex
	ring []PeriodRecord
	next uint64 // sequence number of the next record
	n    int    // records currently held (≤ len(ring))
	head int    // ring index the next record lands in
}

// NewRecorder builds a recorder holding the last size periods
// (DefaultBufferSize when size <= 0).
func NewRecorder(size int) *Recorder {
	if size <= 0 {
		size = DefaultBufferSize
	}
	return &Recorder{ring: make([]PeriodRecord, size)}
}

// Enabled reports whether records are being retained.
func (r *Recorder) Enabled() bool { return r != nil }

// Add assigns the record its sequence ID and stores it, evicting the
// oldest record when the ring is full. The assigned ID is returned.
func (r *Recorder) Add(rec PeriodRecord) uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	rec.ID = r.next
	r.next++
	r.ring[r.head] = rec
	r.head = (r.head + 1) % len(r.ring)
	if r.n < len(r.ring) {
		r.n++
	}
	return rec.ID
}

// Annotate attaches an annotation to the most recently added record —
// the period whose data produced the event — and reports whether a
// record was there to receive it. SLO alert transitions land here
// because they are evaluated right after the period is recorded.
func (r *Recorder) Annotate(a Annotation) bool {
	if r == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.n == 0 {
		return false
	}
	idx := (r.head - 1 + len(r.ring)) % len(r.ring)
	r.ring[idx].Annotations = append(r.ring[idx].Annotations, a)
	return true
}

// Get returns the record with the given sequence ID, if it is still in
// the ring.
func (r *Recorder) Get(id uint64) (PeriodRecord, bool) {
	if r == nil {
		return PeriodRecord{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	oldest := r.next - uint64(r.n)
	if id < oldest || id >= r.next {
		return PeriodRecord{}, false
	}
	idx := (r.head - int(r.next-id) + 2*len(r.ring)) % len(r.ring)
	return r.ring[idx], true
}

// Records returns the retained records, oldest first.
func (r *Recorder) Records() []PeriodRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]PeriodRecord, 0, r.n)
	start := (r.head - r.n + len(r.ring)) % len(r.ring)
	for i := 0; i < r.n; i++ {
		out = append(out, r.ring[(start+i)%len(r.ring)])
	}
	return out
}

// Summaries returns list-view projections of the retained records, newest
// first (the order /debug/periods serves them in).
func (r *Recorder) Summaries() []PeriodSummary {
	recs := r.Records()
	out := make([]PeriodSummary, 0, len(recs))
	for i := len(recs) - 1; i >= 0; i-- {
		rec := &recs[i]
		out = append(out, PeriodSummary{
			ID:           rec.ID,
			TraceID:      rec.TraceID,
			Start:        rec.Start,
			Duration:     rec.Duration,
			Label:        rec.Label,
			Err:          rec.Err,
			GatherErrors: rec.GatherErrors,
			ApplyErrors:  rec.ApplyErrors,
			BudgetsHeld:  rec.BudgetsHeld,
			Infeasible:   rec.Infeasible,
			Spans:        len(rec.Spans),
			Explains:     len(rec.Explains),
			Annotations:  len(rec.Annotations),
		})
	}
	return out
}
