package fleetobs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestHistoryRingWrap(t *testing.T) {
	h := NewHistory(4)
	for i := 1; i <= 6; i++ {
		h.Append(Sample{Period: uint64(i), PowerW: float64(100 * i)})
	}
	if h.Len() != 4 || h.Cap() != 4 {
		t.Fatalf("len=%d cap=%d", h.Len(), h.Cap())
	}
	got := h.Snapshot()
	for i, want := range []uint64{3, 4, 5, 6} {
		if got[i].Period != want {
			t.Fatalf("snapshot = %+v, want periods 3..6 oldest-first", got)
		}
	}
	s := h.Series()
	if s.Capacity != 4 || s.Samples != 4 || s.Period[0] != 3 || s.PowerWatts[3] != 600 {
		t.Fatalf("series = %+v", s)
	}
}

func TestHistoryAppendNoAllocs(t *testing.T) {
	h := NewHistory(64)
	if n := testing.AllocsPerRun(200, func() {
		h.Append(Sample{Period: 1, PowerW: 42})
	}); n > 0 {
		t.Fatalf("Append allocates %.1f allocs/op", n)
	}
}

func TestHistoryNilSafe(t *testing.T) {
	var h *History
	h.Append(Sample{})
	if h.Len() != 0 || h.Cap() != 0 || h.Snapshot() != nil {
		t.Fatal("nil history not inert")
	}
	if s := h.Series(); s.Samples != 0 {
		t.Fatalf("nil series = %+v", s)
	}
}

func TestDefaultHistorySize(t *testing.T) {
	if got := NewHistory(0).Cap(); got != DefaultHistorySize {
		t.Fatalf("default cap = %d", got)
	}
}

func TestHandlerServesFleetAndHistory(t *testing.T) {
	dig := &StatDigest{Racks: 2, PowerW: 900, BudgetW: 800, WorstHeadroomW: -40, WorstHeadroomRack: "r1"}
	dig.AddOutlier(Outlier{Rack: "r1", Score: 1.05, Reason: ReasonCapExceeded})
	hist := NewHistory(8)
	hist.Append(Sample{Period: 1, UnixMs: 1000, PowerW: 900, BudgetW: 800})
	have := true
	h := Handler(func() (Report, bool) {
		return Report{Period: 1, Time: time.Unix(1, 0), Summary: dig.Summary(), Fleet: dig}, have
	}, hist)

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/fleet", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	var rep Report
	if err := json.Unmarshal(rr.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Period != 1 || rep.Fleet == nil || rep.Fleet.PowerW != 900 ||
		len(rep.Fleet.Outliers) != 1 || rep.Summary.OutlierRacks != 1 {
		t.Fatalf("fleet payload = %s", rr.Body.String())
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/fleet/history", nil))
	var series HistorySeries
	if err := json.Unmarshal(rr.Body.Bytes(), &series); err != nil {
		t.Fatal(err)
	}
	if series.Samples != 1 || series.PowerWatts[0] != 900 {
		t.Fatalf("history payload = %s", rr.Body.String())
	}

	// Before the first period the fleet endpoint says so instead of
	// fabricating an empty digest.
	have = false
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/fleet", nil))
	if rr.Code != http.StatusServiceUnavailable || !strings.Contains(rr.Body.String(), "no fleet digest") {
		t.Fatalf("empty-state response: %d %s", rr.Code, rr.Body.String())
	}
}
