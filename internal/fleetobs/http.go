package fleetobs

import (
	"encoding/json"
	"net/http"
	"strings"
	"time"
)

// Report is the /debug/fleet payload: the latest period's fleet digest
// with its headline summary and when it was taken.
type Report struct {
	Period  uint64        `json:"period"`
	Time    time.Time     `json:"time"`
	Summary DigestSummary `json:"summary"`
	Fleet   *StatDigest   `json:"fleet"`
}

// Handler serves the fleet observability drill-down:
//
//	/debug/fleet          — latest fleet digest (rollup, per-level
//	                        breakdown, top-K outlier racks with reasons)
//	/debug/fleet/history  — per-series ring of one sample per period
//
// Mount it on a telemetry server under both "/debug/fleet" and
// "/debug/fleet/history". report returns the latest Report and whether
// one exists yet; hist may be nil.
func Handler(report func() (Report, bool), hist *History) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		switch {
		case strings.HasSuffix(req.URL.Path, "/history"):
			writeJSON(w, hist.Series())
		default:
			rep, ok := report()
			if !ok {
				http.Error(w, "no fleet digest yet: no control period has completed", http.StatusServiceUnavailable)
				return
			}
			writeJSON(w, rep)
		}
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
