package fleetobs

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"capmaestro/internal/telemetry"
)

// digestJSON canonicalizes a digest for equality: JSON marshaling folds
// nil and empty slices together (omitempty) while keeping every numeric
// field exact.
func digestJSON(t *testing.T, d *StatDigest) string {
	t.Helper()
	b, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// randDigest builds a random canonical digest. Watt fields are small
// integers so float64 sums are exact regardless of merge grouping, and
// rack IDs are globally unique (via seq) so the outlier order is total.
func randDigest(rng *rand.Rand, seq *int) *StatDigest {
	d := &StatDigest{}
	racks := rng.Intn(4)
	d.Racks = racks
	if racks > 0 {
		d.PowerW = float64(rng.Intn(1000) * racks)
		d.RequestW = float64(rng.Intn(1000) * racks)
		d.CapMinW = float64(rng.Intn(500) * racks)
		d.BudgetW = float64(rng.Intn(1000) * racks)
		d.HeadroomW = float64(rng.Intn(200)*racks - 100)
		d.WorstHeadroomW = float64(rng.Intn(200) - 100)
		d.WorstHeadroomRack = fmt.Sprintf("w%04d", rng.Intn(50))
		d.ViolatingRacks = rng.Intn(racks + 1)
		d.ViolationW = float64(rng.Intn(300))
		// Exact binary fractions: the merge-law checks compare sums
		// bit-for-bit, so observations must add associatively.
		for i := 0; i < racks; i++ {
			d.Headroom.Observe(HeadroomBounds, float64(rng.Intn(120)-60)/128)
		}
	}
	for i, n := 0, rng.Intn(TopK+1); i < n; i++ {
		*seq++
		d.AddOutlier(Outlier{
			Rack:   fmt.Sprintf("r%06d", *seq),
			Score:  float64(rng.Intn(40)) / 8,
			Reason: []string{ReasonStale, ReasonCapExceeded, ReasonLowHeadroom}[rng.Intn(3)],
			PowerW: float64(rng.Intn(600)),
		})
	}
	for i, n := 0, rng.Intn(3); i < n; i++ {
		ls := LevelStats{
			Level:        1 + rng.Intn(3),
			Workers:      1 + rng.Intn(8),
			GatherErrors: rng.Intn(2),
			Stale:        rng.Intn(2),
			Held:         rng.Intn(2),
		}
		for j := 0; j < ls.Workers; j++ {
			ls.GatherLatency.Observe(LatencyBounds, float64(rng.Intn(100))/1024)
		}
		d.AddLevel(&ls)
	}
	return d
}

func merged(a, b *StatDigest) *StatDigest {
	m := a.Clone()
	m.Merge(b)
	return m
}

// TestMergeLaws is the property test for the merge algebra: over
// randomized canonical digests, Merge must be associative and commutative
// with the zero value as identity — the precondition for rolling digests
// up the hierarchy in any grouping.
func TestMergeLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(0xf1ee7))
	seq := 0
	for trial := 0; trial < 300; trial++ {
		a, b, c := randDigest(rng, &seq), randDigest(rng, &seq), randDigest(rng, &seq)

		left := merged(merged(a, b), c)
		right := merged(a, merged(b, c))
		if la, ra := digestJSON(t, left), digestJSON(t, right); la != ra {
			t.Fatalf("trial %d: not associative:\n(a+b)+c = %s\na+(b+c) = %s", trial, la, ra)
		}

		ab, ba := merged(a, b), merged(b, a)
		if la, ra := digestJSON(t, ab), digestJSON(t, ba); la != ra {
			t.Fatalf("trial %d: not commutative:\na+b = %s\nb+a = %s", trial, la, ra)
		}

		zero := &StatDigest{}
		if got := digestJSON(t, merged(zero, a)); got != digestJSON(t, a) {
			t.Fatalf("trial %d: zero+a != a:\n%s\n%s", trial, got, digestJSON(t, a))
		}
		if got := digestJSON(t, merged(a, zero)); got != digestJSON(t, a) {
			t.Fatalf("trial %d: a+zero != a:\n%s\n%s", trial, got, digestJSON(t, a))
		}
	}
}

// TestTopKMergeMatchesFlatUnion pins the claim the truncation relies on:
// merging truncated lists level by level keeps exactly the global top-K,
// however the merge tree is shaped.
func TestTopKMergeMatchesFlatUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 40
	parts := make([]*StatDigest, n)
	var all []Outlier
	for i := range parts {
		d := &StatDigest{Racks: 1, PowerW: float64(300 + i)}
		d.WorstHeadroomW, d.WorstHeadroomRack = float64(i), fmt.Sprintf("r%02d", i)
		o := Outlier{
			Rack:   fmt.Sprintf("r%02d", i),
			Score:  float64(rng.Intn(10)) / 2,
			Reason: ReasonLowHeadroom,
		}
		d.AddOutlier(o)
		all = append(all, o)
		parts[i] = d
	}

	// Sequential fold and a binary merge tree must agree.
	seq := &StatDigest{}
	for _, p := range parts {
		seq.Merge(p)
	}
	tree := make([]*StatDigest, n)
	for i := range parts {
		tree[i] = parts[i].Clone()
	}
	for len(tree) > 1 {
		var next []*StatDigest
		for i := 0; i < len(tree); i += 2 {
			if i+1 < len(tree) {
				tree[i].Merge(tree[i+1])
			}
			next = append(next, tree[i])
		}
		tree = next
	}
	if a, b := digestJSON(t, seq), digestJSON(t, tree[0]); a != b {
		t.Fatalf("merge trees disagree:\nseq  %s\ntree %s", a, b)
	}

	sort.Slice(all, func(i, j int) bool { return outlierLess(&all[i], &all[j]) })
	want := all[:TopK]
	if len(seq.Outliers) != TopK {
		t.Fatalf("merged outliers = %d, want %d", len(seq.Outliers), TopK)
	}
	for i := range want {
		if seq.Outliers[i] != want[i] {
			t.Fatalf("outlier %d = %+v, want %+v", i, seq.Outliers[i], want[i])
		}
	}
	if seq.Racks != n || seq.WorstHeadroomW != 0 || seq.WorstHeadroomRack != "r00" {
		t.Fatalf("rollup drifted: %+v", seq.Summary())
	}
}

func TestAddOutlierOrderAndTruncation(t *testing.T) {
	d := &StatDigest{}
	for i := 0; i < 2*TopK; i++ {
		d.AddOutlier(Outlier{Rack: fmt.Sprintf("r%02d", i), Score: float64(i), Reason: ReasonStale})
	}
	if len(d.Outliers) != TopK {
		t.Fatalf("outliers = %d, want %d", len(d.Outliers), TopK)
	}
	for i := range d.Outliers {
		if want := float64(2*TopK - 1 - i); d.Outliers[i].Score != want {
			t.Fatalf("outlier %d score = %v, want %v", i, d.Outliers[i].Score, want)
		}
	}
	// An outlier below the retained range is dropped without shifting.
	d.AddOutlier(Outlier{Rack: "tiny", Score: -1})
	if len(d.Outliers) != TopK || d.Outliers[TopK-1].Rack == "tiny" {
		t.Fatal("below-range outlier was retained")
	}
}

func TestLevelsMergeByLevel(t *testing.T) {
	a, b := &StatDigest{}, &StatDigest{}
	a.AddLevel(&LevelStats{Level: 1, Workers: 4, GatherErrors: 1})
	a.AddLevel(&LevelStats{Level: 2, Workers: 2})
	b.AddLevel(&LevelStats{Level: 1, Workers: 6, Stale: 3})
	b.AddLevel(&LevelStats{Level: 3, Workers: 1})
	a.Merge(b)
	if len(a.Levels) != 3 {
		t.Fatalf("levels = %+v", a.Levels)
	}
	if l1 := a.Levels[0]; l1.Level != 1 || l1.Workers != 10 || l1.GatherErrors != 1 || l1.Stale != 3 {
		t.Fatalf("level 1 = %+v", l1)
	}
	if a.Levels[1].Level != 2 || a.Levels[2].Level != 3 {
		t.Fatalf("levels out of order: %+v", a.Levels)
	}
	if a.NextLevel() != 4 {
		t.Fatalf("NextLevel = %d, want 4", a.NextLevel())
	}
	if (&StatDigest{}).NextLevel() != 1 {
		t.Fatal("empty digest NextLevel != 1")
	}
}

func TestCopyFromCloneReset(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	seq := 0
	src := randDigest(rng, &seq)
	src.AddOutlier(Outlier{Rack: "rX", Score: 99})
	c := src.Clone()
	if digestJSON(t, c) != digestJSON(t, src) {
		t.Fatal("clone differs from source")
	}
	// The clone is independent: mutating it leaves the source alone.
	before := digestJSON(t, src)
	c.AddOutlier(Outlier{Rack: "rY", Score: 100})
	c.Racks += 7
	if digestJSON(t, src) != before {
		t.Fatal("mutating the clone changed the source")
	}
	// Reset keeps backing arrays but clears the value.
	c.Reset()
	if digestJSON(t, c) != digestJSON(t, &StatDigest{}) {
		t.Fatalf("reset digest not zero: %s", digestJSON(t, c))
	}
	c.CopyFrom(c) // self-copy is a no-op, not a corruption
	if digestJSON(t, c) != digestJSON(t, &StatDigest{}) {
		t.Fatal("self CopyFrom corrupted the digest")
	}
}

// TestMergeSteadyStateAllocs: with warmed slice capacities, the per-period
// accumulator pattern (Reset + Merge children + CopyFrom publish) must not
// allocate.
func TestMergeSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	seq := 0
	children := make([]*StatDigest, 16)
	for i := range children {
		children[i] = randDigest(rng, &seq)
	}
	acc, pub := &StatDigest{}, &StatDigest{}
	fold := func() {
		acc.Reset()
		for _, c := range children {
			acc.Merge(c)
		}
		pub.CopyFrom(acc)
	}
	fold() // warm capacities
	if n := testing.AllocsPerRun(100, fold); n > 0 {
		t.Fatalf("steady-state fold allocates %.1f allocs/op", n)
	}
}

func TestSummaryProjection(t *testing.T) {
	d := &StatDigest{
		Racks: 5, PowerW: 2000, BudgetW: 1700, HeadroomW: -300,
		WorstHeadroomW: -120, WorstHeadroomRack: "r3", ViolatingRacks: 2,
	}
	d.AddOutlier(Outlier{Rack: "r3", Score: 1.2, Reason: ReasonCapExceeded})
	s := d.Summary()
	want := DigestSummary{
		Racks: 5, PowerWatts: 2000, BudgetWatts: 1700, HeadroomWatts: -300,
		WorstHeadroomWatts: -120, WorstHeadroomRack: "r3", ViolatingRacks: 2, OutlierRacks: 1,
	}
	if s != want {
		t.Fatalf("summary = %+v, want %+v", s, want)
	}
}

func TestMergeHistQuantileAndMean(t *testing.T) {
	var h telemetry.MergeHist
	for _, v := range []float64{-0.2, -0.01, 0.01, 0.04, 0.25, 0.9} {
		h.Observe(HeadroomBounds, v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Quantile(HeadroomBounds, 0); got != -0.10 {
		t.Fatalf("q0 = %v", got)
	}
	// The top observation overflows the last bound: the estimate clamps to
	// the largest finite bound.
	if got := h.Quantile(HeadroomBounds, 1); got != 0.50 {
		t.Fatalf("q1 = %v", got)
	}
	var other telemetry.MergeHist
	other.Observe(HeadroomBounds, 0.03)
	h.Merge(&other)
	if h.Count() != 7 {
		t.Fatalf("merged count = %d", h.Count())
	}
	if mean := h.Mean(); mean == 0 {
		t.Fatalf("mean = %v", mean)
	}
}
