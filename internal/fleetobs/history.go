package fleetobs

import "sync"

// Sample is one control period's fleet observability sample: the digest's
// headline numbers plus the room's own degradation counters, flattened so
// /debug/fleet/history can serve per-series arrays.
type Sample struct {
	Period         uint64  `json:"period"`
	UnixMs         int64   `json:"unix_ms"`
	PowerW         float64 `json:"power_watts"`
	BudgetW        float64 `json:"budget_watts"`
	HeadroomW      float64 `json:"headroom_watts"`
	WorstHeadroomW float64 `json:"worst_headroom_watts"`
	ViolatingRacks int     `json:"violating_racks"`
	OutlierRacks   int     `json:"outlier_racks"`
	StaleRacks     int     `json:"stale_racks"`
	HeldRacks      int     `json:"held_racks"`
	GatherErrors   int     `json:"gather_errors"`
}

// DefaultHistorySize is the ring capacity when none is configured: at one
// sample per control period it covers the recent past without growing.
const DefaultHistorySize = 512

// History is a fixed-size ring of per-period samples — the /debug/fleet
// history TSDB. The ring is allocated once; Append never allocates, so the
// steady-state control loop stays allocation-free. Nil-safe: a nil History
// drops appends and reports empty.
type History struct {
	mu   sync.Mutex
	ring []Sample
	head int // next write position
	n    int // number of valid samples
}

// NewHistory returns a ring holding the last size samples (size <= 0 uses
// DefaultHistorySize).
func NewHistory(size int) *History {
	if size <= 0 {
		size = DefaultHistorySize
	}
	return &History{ring: make([]Sample, size)}
}

// Append records one period's sample, overwriting the oldest when full.
func (h *History) Append(s Sample) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.ring[h.head] = s
	h.head = (h.head + 1) % len(h.ring)
	if h.n < len(h.ring) {
		h.n++
	}
	h.mu.Unlock()
}

// Len returns the number of samples currently held.
func (h *History) Len() int {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Cap returns the ring capacity.
func (h *History) Cap() int {
	if h == nil {
		return 0
	}
	return len(h.ring)
}

// Snapshot returns the held samples oldest-first.
func (h *History) Snapshot() []Sample {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]Sample, h.n)
	start := h.head - h.n
	if start < 0 {
		start += len(h.ring)
	}
	for i := 0; i < h.n; i++ {
		out[i] = h.ring[(start+i)%len(h.ring)]
	}
	return out
}

// HistorySeries is the column-oriented projection of the ring, oldest
// first — one array per series, aligned by index.
type HistorySeries struct {
	Capacity           int       `json:"capacity"`
	Samples            int       `json:"samples"`
	Period             []uint64  `json:"period"`
	UnixMs             []int64   `json:"unix_ms"`
	PowerWatts         []float64 `json:"power_watts"`
	BudgetWatts        []float64 `json:"budget_watts"`
	HeadroomWatts      []float64 `json:"headroom_watts"`
	WorstHeadroomWatts []float64 `json:"worst_headroom_watts"`
	ViolatingRacks     []int     `json:"violating_racks"`
	OutlierRacks       []int     `json:"outlier_racks"`
	StaleRacks         []int     `json:"stale_racks"`
	HeldRacks          []int     `json:"held_racks"`
	GatherErrors       []int     `json:"gather_errors"`
}

// Series returns the per-series projection of the held samples.
func (h *History) Series() HistorySeries {
	samples := h.Snapshot()
	s := HistorySeries{
		Capacity:           h.Cap(),
		Samples:            len(samples),
		Period:             make([]uint64, len(samples)),
		UnixMs:             make([]int64, len(samples)),
		PowerWatts:         make([]float64, len(samples)),
		BudgetWatts:        make([]float64, len(samples)),
		HeadroomWatts:      make([]float64, len(samples)),
		WorstHeadroomWatts: make([]float64, len(samples)),
		ViolatingRacks:     make([]int, len(samples)),
		OutlierRacks:       make([]int, len(samples)),
		StaleRacks:         make([]int, len(samples)),
		HeldRacks:          make([]int, len(samples)),
		GatherErrors:       make([]int, len(samples)),
	}
	for i, sm := range samples {
		s.Period[i] = sm.Period
		s.UnixMs[i] = sm.UnixMs
		s.PowerWatts[i] = sm.PowerW
		s.BudgetWatts[i] = sm.BudgetW
		s.HeadroomWatts[i] = sm.HeadroomW
		s.WorstHeadroomWatts[i] = sm.WorstHeadroomW
		s.ViolatingRacks[i] = sm.ViolatingRacks
		s.OutlierRacks[i] = sm.OutlierRacks
		s.StaleRacks[i] = sm.StaleRacks
		s.HeldRacks[i] = sm.HeldRacks
		s.GatherErrors[i] = sm.GatherErrors
	}
	return s
}
