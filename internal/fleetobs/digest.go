// Package fleetobs is the fleet observability plane: a mergeable stats
// layer that rides the control hierarchy's existing gather path instead of
// scraping every worker's /metrics endpoint. Each rack attaches a compact,
// fixed-shape StatDigest to its gather response; every aggregator merges
// its children's digests with associative/commutative operations and
// attaches the result to its own response; the room worker therefore ends
// each control period holding one digest describing the whole fleet —
// watt-for-watt power sums, headroom distribution, cap-violation pressure,
// top-K outlier racks, and per-level health — at zero extra RPCs.
package fleetobs

import (
	"capmaestro/internal/telemetry"
)

// TopK is the number of outlier racks a digest retains. Truncated top-K
// union is exactly associative: any rack in the global top-K is in the
// top-K of every subset containing it, so merging truncated lists level by
// level loses nothing the full union would have kept.
const TopK = 8

// Outlier reasons. Scores are constructed so reasons rank coarsely by
// severity before fine-ranking within a reason: stale (2+periods) >
// cap-exceeded (1+violation fraction) > low-headroom (fraction below the
// threshold).
const (
	ReasonStale       = "stale"
	ReasonCapExceeded = "cap-exceeded"
	ReasonLowHeadroom = "low-headroom"
)

// LowHeadroomFrac is the headroom fraction (headroom / demand) below which
// a rack self-reports as a low-headroom outlier.
const LowHeadroomFrac = 0.05

// Histogram bounds tables. Bounds are a property of the series, not of
// the histogram value, so they never travel on the wire.
var (
	// HeadroomBounds buckets each rack's headroom fraction
	// (headroom / demand): negative buckets are cap-violation severity,
	// positive buckets are slack.
	HeadroomBounds = []float64{-0.25, -0.10, -0.05, -0.02, 0, 0.02, 0.05, 0.10, 0.20, 0.30, 0.50}
	// LatencyBounds buckets per-child gather latency in seconds.
	LatencyBounds = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1}
)

// Outlier is one rack (or subtree) worth surfacing fleet-wide, with the
// reason it stands out. Lists are kept sorted by (Score desc, Rack asc,
// Reason asc) and truncated to TopK.
type Outlier struct {
	Rack         string  `json:"rack"`
	Score        float64 `json:"score"`
	Reason       string  `json:"reason"`
	PowerW       float64 `json:"power_watts,omitempty"`
	HeadroomW    float64 `json:"headroom_watts,omitempty"`
	StalePeriods int     `json:"stale_periods,omitempty"`
}

// LevelStats is one hierarchy level's health row: each aggregator (and the
// room) contributes one row for itself; merging digests merges rows of the
// same level, so the fleet digest ends with one row per level.
type LevelStats struct {
	Level         int                 `json:"level"`
	Workers       int                 `json:"workers"`
	GatherErrors  int                 `json:"gather_errors"`
	Stale         int                 `json:"stale"`
	Held          int                 `json:"held"`
	GatherLatency telemetry.MergeHist `json:"gather_latency"`
}

// StatDigest is the fixed-shape mergeable summary a worker attaches to its
// gather response. All fields are state-shaped (the current period's
// values, not monotone counters) so an unchanged rack produces a
// byte-identical digest period after period and the wire delta path can
// squash it along with the summary.
//
// Merge is associative and commutative with the zero value as identity,
// provided both operands are canonical: Outliers sorted and at most TopK,
// Levels sorted by level. Every constructor in this package and in
// internal/controlplane maintains canonical form.
type StatDigest struct {
	// Racks is the number of leaf racks summed into this digest.
	Racks int `json:"racks"`
	// Watt-for-watt sums over those racks.
	PowerW    float64 `json:"power_watts"`
	RequestW  float64 `json:"request_watts"`
	CapMinW   float64 `json:"cap_min_watts"`
	BudgetW   float64 `json:"budget_watts"`
	HeadroomW float64 `json:"headroom_watts"`
	// Worst headroom across the racks (min-merge; ties break toward the
	// lexicographically smaller rack ID so merging stays commutative).
	WorstHeadroomW    float64 `json:"worst_headroom_watts"`
	WorstHeadroomRack string  `json:"worst_headroom_rack,omitempty"`
	// Cap-violation pressure: racks whose demand exceeds their applied
	// budget, and the summed excess watts.
	ViolatingRacks int     `json:"violating_racks"`
	ViolationW     float64 `json:"violation_watts"`
	// Headroom holds one observation per rack: headroom fraction
	// (headroom / demand) bucketed by HeadroomBounds.
	Headroom telemetry.MergeHist `json:"headroom_hist"`
	// Outliers is the top-K racks by severity score, with reasons.
	Outliers []Outlier `json:"outliers,omitempty"`
	// Levels is the per-hierarchy-level health breakdown, sorted by level.
	Levels []LevelStats `json:"levels,omitempty"`
}

// DigestSummary is the digest reduced to the handful of numbers worth
// putting in /healthz, PeriodStats, and scalesim output.
type DigestSummary struct {
	Racks              int     `json:"racks"`
	PowerWatts         float64 `json:"power_watts"`
	BudgetWatts        float64 `json:"budget_watts"`
	HeadroomWatts      float64 `json:"headroom_watts"`
	WorstHeadroomWatts float64 `json:"worst_headroom_watts"`
	WorstHeadroomRack  string  `json:"worst_headroom_rack,omitempty"`
	ViolatingRacks     int     `json:"violating_racks"`
	OutlierRacks       int     `json:"outlier_racks"`
}

// Summary reduces the digest to its headline numbers.
func (d *StatDigest) Summary() DigestSummary {
	return DigestSummary{
		Racks:              d.Racks,
		PowerWatts:         d.PowerW,
		BudgetWatts:        d.BudgetW,
		HeadroomWatts:      d.HeadroomW,
		WorstHeadroomWatts: d.WorstHeadroomW,
		WorstHeadroomRack:  d.WorstHeadroomRack,
		ViolatingRacks:     d.ViolatingRacks,
		OutlierRacks:       len(d.Outliers),
	}
}

// outlierLess is the canonical outlier order: score descending, then rack
// and reason ascending — a total order, so merged lists are deterministic
// regardless of merge grouping.
func outlierLess(a, b *Outlier) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	if a.Rack != b.Rack {
		return a.Rack < b.Rack
	}
	return a.Reason < b.Reason
}

// AddOutlier inserts o into the sorted, TopK-truncated outlier list.
func (d *StatDigest) AddOutlier(o Outlier) {
	i := 0
	for i < len(d.Outliers) && outlierLess(&d.Outliers[i], &o) {
		i++
	}
	if i >= TopK {
		return
	}
	if len(d.Outliers) < TopK {
		d.Outliers = append(d.Outliers, Outlier{})
	}
	copy(d.Outliers[i+1:], d.Outliers[i:])
	d.Outliers[i] = o
}

// AddLevel merges one level row into the sorted per-level breakdown.
func (d *StatDigest) AddLevel(ls *LevelStats) {
	i := 0
	for i < len(d.Levels) && d.Levels[i].Level < ls.Level {
		i++
	}
	if i < len(d.Levels) && d.Levels[i].Level == ls.Level {
		row := &d.Levels[i]
		row.Workers += ls.Workers
		row.GatherErrors += ls.GatherErrors
		row.Stale += ls.Stale
		row.Held += ls.Held
		row.GatherLatency.Merge(&ls.GatherLatency)
		return
	}
	d.Levels = append(d.Levels, LevelStats{})
	copy(d.Levels[i+1:], d.Levels[i:])
	d.Levels[i] = *ls
}

// NextLevel returns one above the highest level row present — the level an
// observer merging this digest should report itself as when its place in
// the hierarchy was not configured explicitly. 1 when no rows are present
// (merging raw rack digests).
func (d *StatDigest) NextLevel() int {
	if len(d.Levels) == 0 {
		return 1
	}
	return d.Levels[len(d.Levels)-1].Level + 1
}

// Merge folds o into d. Both operands must be canonical (see type docs);
// the result is canonical. o is not modified; o == nil is a no-op.
func (d *StatDigest) Merge(o *StatDigest) {
	if o == nil {
		return
	}
	// Min-merge the worst headroom first (it reads d.Racks before the sum
	// below changes it). A side with no racks has no worst rack to offer,
	// which is what makes the zero value an identity.
	if o.Racks > 0 {
		if d.Racks == 0 || o.WorstHeadroomW < d.WorstHeadroomW ||
			(o.WorstHeadroomW == d.WorstHeadroomW && o.WorstHeadroomRack < d.WorstHeadroomRack) {
			d.WorstHeadroomW = o.WorstHeadroomW
			d.WorstHeadroomRack = o.WorstHeadroomRack
		}
	}
	d.Racks += o.Racks
	d.PowerW += o.PowerW
	d.RequestW += o.RequestW
	d.CapMinW += o.CapMinW
	d.BudgetW += o.BudgetW
	d.HeadroomW += o.HeadroomW
	d.ViolatingRacks += o.ViolatingRacks
	d.ViolationW += o.ViolationW
	d.Headroom.Merge(&o.Headroom)

	if len(o.Outliers) > 0 {
		var tmp [TopK]Outlier
		merged := tmp[:0]
		i, j := 0, 0
		for len(merged) < TopK && (i < len(d.Outliers) || j < len(o.Outliers)) {
			switch {
			case i >= len(d.Outliers):
				merged = append(merged, o.Outliers[j])
				j++
			case j >= len(o.Outliers):
				merged = append(merged, d.Outliers[i])
				i++
			case outlierLess(&o.Outliers[j], &d.Outliers[i]):
				merged = append(merged, o.Outliers[j])
				j++
			default:
				merged = append(merged, d.Outliers[i])
				i++
			}
		}
		d.Outliers = append(d.Outliers[:0], merged...)
	}
	for i := range o.Levels {
		d.AddLevel(&o.Levels[i])
	}
}

// Reset clears the digest while keeping the outlier and level backing
// arrays, so a reused accumulator stays allocation-free in steady state.
func (d *StatDigest) Reset() {
	outliers, levels := d.Outliers[:0], d.Levels[:0]
	*d = StatDigest{}
	d.Outliers, d.Levels = outliers, levels
}

// CopyFrom makes d a deep copy of o, reusing d's backing arrays where
// capacity allows.
func (d *StatDigest) CopyFrom(o *StatDigest) {
	if d == o {
		return
	}
	outliers := append(d.Outliers[:0], o.Outliers...)
	levels := append(d.Levels[:0], o.Levels...)
	*d = *o
	d.Outliers, d.Levels = outliers, levels
}

// Clone returns an independent deep copy.
func (d *StatDigest) Clone() *StatDigest {
	c := &StatDigest{}
	c.CopyFrom(d)
	return c
}
