package power

import (
	"math"
	"testing"
)

func TestSinglePhaseRatingMatchesTable4CDU(t *testing.T) {
	// The paper's 30 A breaker at 230 V phase voltage is the 6.9 kW
	// per-phase CDU rating in Table 4.
	if got := SinglePhaseRating(30, PhaseVoltage); got != 6900 {
		t.Errorf("30A at 230V = %v, want 6900", got)
	}
	if SinglePhaseRating(0, 230) != 0 || SinglePhaseRating(30, 0) != 0 {
		t.Error("non-positive inputs should give 0")
	}
}

func TestDeratedBreakerExample(t *testing.T) {
	// Section 2.1's redundant-feed example: a 30 A breaker may carry 24 A
	// sustained (80%), so each of two redundant feeds is loaded to 12 A
	// (40%) in normal operation.
	full := SinglePhaseRating(30, PhaseVoltage)
	sustained := full * 0.8
	perFeed := full * 0.4
	if CurrentAt(sustained, PhaseVoltage) != 24 {
		t.Errorf("80%% current = %v A, want 24", CurrentAt(sustained, PhaseVoltage))
	}
	if CurrentAt(perFeed, PhaseVoltage) != 12 {
		t.Errorf("40%% current = %v A, want 12", CurrentAt(perFeed, PhaseVoltage))
	}
}

func TestThreePhaseRating(t *testing.T) {
	got := ThreePhaseRating(10, LineToLineVoltage)
	want := math.Sqrt(3) * 400 * 10
	if math.Abs(float64(got)-want) > 1e-9 {
		t.Errorf("3-phase 10A at 400V = %v, want %v", got, want)
	}
	if ThreePhaseRating(-1, 400) != 0 {
		t.Error("negative current should give 0")
	}
}

func TestCurrentAtZeroVoltage(t *testing.T) {
	if CurrentAt(100, 0) != 0 {
		t.Error("zero voltage should give 0 current")
	}
}
