package power

import (
	"math"
)

// DemandEstimator implements the regression method of Section 5: each
// capping controller keeps the last window of per-second (power, throttle
// level) readings and fits a line correlating server power to the throttling
// level. Extrapolating the line to 0% throttling estimates the power the
// workload would consume at full performance — the server's Pdemand. When a
// reading arrives with 0% throttling, the measured power is used directly
// (the paper does the same).
//
// The zero value is not usable; construct with NewDemandEstimator.
type DemandEstimator struct {
	window   int
	powers   []float64 // ring buffer of power samples (W)
	throttle []float64 // parallel ring buffer of throttle levels in [0,1]
	next     int
	filled   bool

	lastUnthrottled Watts
	haveUnthrottled bool
}

// NewDemandEstimator creates an estimator over a sliding window of the given
// number of samples. The paper uses 16 one-second samples.
func NewDemandEstimator(window int) *DemandEstimator {
	if window < 2 {
		window = 2
	}
	return &DemandEstimator{
		window:   window,
		powers:   make([]float64, window),
		throttle: make([]float64, window),
	}
}

// DefaultDemandWindow is the sample window used by the paper's prototype.
const DefaultDemandWindow = 16

// Observe records one (power, throttleLevel) reading. throttleLevel is the
// node manager's power-cap throttling metric in [0, 1], where 0 means the
// server is running at full performance.
func (e *DemandEstimator) Observe(p Watts, throttleLevel float64) {
	if throttleLevel < 0 {
		throttleLevel = 0
	}
	if throttleLevel > 1 {
		throttleLevel = 1
	}
	e.powers[e.next] = float64(p)
	e.throttle[e.next] = throttleLevel
	e.next++
	if e.next == e.window {
		e.next = 0
		e.filled = true
	}
	if throttleLevel == 0 {
		e.lastUnthrottled = p
		e.haveUnthrottled = true
	}
}

// samples returns the number of valid readings currently stored.
func (e *DemandEstimator) samples() int {
	if e.filled {
		return e.window
	}
	return e.next
}

// Demand estimates the server's current full-performance power demand. It
// returns false until at least two samples have been observed.
func (e *DemandEstimator) Demand() (Watts, bool) {
	n := e.samples()
	if n == 0 {
		return 0, false
	}
	// Prefer direct measurement when the newest samples include an
	// unthrottled interval: "If power is measured during an interval when
	// the power cap throttling is set to 0%, then the controller uses the
	// actual measured power" (Section 5).
	allUnthrottled := true
	for i := 0; i < n; i++ {
		if e.throttle[i] != 0 {
			allUnthrottled = false
			break
		}
	}
	if allUnthrottled {
		// Average of the window gives a stable reading.
		var sum float64
		for i := 0; i < n; i++ {
			sum += e.powers[i]
		}
		return Watts(sum / float64(n)), true
	}
	if n < 2 {
		return 0, false
	}

	// Ordinary least squares of power against throttle level; the
	// intercept is the estimated power at 0% throttle.
	var sumX, sumY, sumXX, sumXY float64
	for i := 0; i < n; i++ {
		x, y := e.throttle[i], e.powers[i]
		sumX += x
		sumY += y
		sumXX += x * x
		sumXY += x * y
	}
	fn := float64(n)
	denom := fn*sumXX - sumX*sumX
	if math.Abs(denom) < 1e-9 {
		// All samples at the same throttle level: the regression is
		// degenerate. Fall back to the last unthrottled measurement if we
		// ever saw one, otherwise report the mean power as a conservative
		// lower bound on demand.
		if e.haveUnthrottled {
			return e.lastUnthrottled, true
		}
		return Watts(sumY / fn), true
	}
	slope := (fn*sumXY - sumX*sumY) / denom
	intercept := (sumY - slope*sumX) / fn
	if intercept < 0 {
		intercept = 0
	}
	return Watts(intercept), true
}

// Reset discards all recorded samples.
func (e *DemandEstimator) Reset() {
	e.next = 0
	e.filled = false
	e.haveUnthrottled = false
	e.lastUnthrottled = 0
}
