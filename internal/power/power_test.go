package power

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWattsString(t *testing.T) {
	cases := []struct {
		in   Watts
		want string
	}{
		{0, "0.0W"},
		{490, "490.0W"},
		{-35.21, "-35.2W"},
		{9999.94, "9999.9W"},
		{10000, "10.00kW"},
		{700000, "700.00kW"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Watts(%v).String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
}

func TestKilowattsRoundTrip(t *testing.T) {
	w := Kilowatts(6.9)
	if w != 6900 {
		t.Fatalf("Kilowatts(6.9) = %v, want 6900", float64(w))
	}
	if kw := w.KW(); kw != 6.9 {
		t.Fatalf("KW() = %v, want 6.9", kw)
	}
}

func TestClamp(t *testing.T) {
	if got := Watts(500).Clamp(270, 490); got != 490 {
		t.Errorf("clamp above: got %v", got)
	}
	if got := Watts(100).Clamp(270, 490); got != 270 {
		t.Errorf("clamp below: got %v", got)
	}
	if got := Watts(300).Clamp(270, 490); got != 300 {
		t.Errorf("clamp inside: got %v", got)
	}
}

func TestMinMaxSum(t *testing.T) {
	if Max(3, 7) != 7 || Max(7, 3) != 7 {
		t.Error("Max wrong")
	}
	if Min(3, 7) != 3 || Min(7, 3) != 3 {
		t.Error("Min wrong")
	}
	if Sum([]Watts{1, 2, 3.5}) != 6.5 {
		t.Error("Sum wrong")
	}
	if Sum(nil) != 0 {
		t.Error("Sum(nil) should be 0")
	}
}

func TestApproxEqual(t *testing.T) {
	if !ApproxEqual(100, 100.4, 0.5) {
		t.Error("expected approx equal within eps")
	}
	if ApproxEqual(100, 101, 0.5) {
		t.Error("expected not approx equal beyond eps")
	}
}

func TestClampProperty(t *testing.T) {
	f := func(w, a, b float64) bool {
		lo, hi := Watts(math.Min(a, b)), Watts(math.Max(a, b))
		got := Watts(w).Clamp(lo, hi)
		return got >= lo && got <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDefaultServerModel(t *testing.T) {
	m := DefaultServerModel()
	if err := m.Validate(); err != nil {
		t.Fatalf("default model invalid: %v", err)
	}
	if m.Idle != 160 || m.CapMin != 270 || m.CapMax != 490 {
		t.Fatalf("default model = %+v, want Table 4 values", m)
	}
}

func TestServerModelValidate(t *testing.T) {
	bad := []ServerModel{
		{Idle: -1, CapMin: 270, CapMax: 490},
		{Idle: 300, CapMin: 270, CapMax: 490},
		{Idle: 160, CapMin: 500, CapMax: 490},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: expected validation error for %+v", i, m)
		}
	}
}

func TestPowerAtEndpoints(t *testing.T) {
	m := DefaultServerModel()
	if got := m.PowerAt(0); got != 160 {
		t.Errorf("PowerAt(0) = %v, want idle 160", got)
	}
	if got := m.PowerAt(1); got != 490 {
		t.Errorf("PowerAt(1) = %v, want max 490", got)
	}
	if got := m.PowerAt(0.5); got != 325 {
		t.Errorf("PowerAt(0.5) = %v, want 325", got)
	}
	// Out-of-range utilization clamps.
	if got := m.PowerAt(-2); got != 160 {
		t.Errorf("PowerAt(-2) = %v, want 160", got)
	}
	if got := m.PowerAt(3); got != 490 {
		t.Errorf("PowerAt(3) = %v, want 490", got)
	}
}

func TestUtilizationForInvertsPowerAt(t *testing.T) {
	m := DefaultServerModel()
	f := func(u float64) bool {
		u = math.Abs(math.Mod(u, 1))
		p := m.PowerAt(u)
		got := m.UtilizationFor(p)
		return math.Abs(got-u) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUtilizationForDegenerate(t *testing.T) {
	m := ServerModel{Idle: 200, CapMin: 200, CapMax: 200}
	if got := m.UtilizationFor(200); got != 0 {
		t.Errorf("degenerate model utilization = %v, want 0", got)
	}
}

func TestCapRatio(t *testing.T) {
	m := DefaultServerModel()
	cases := []struct {
		demand, budget Watts
		want           float64
	}{
		{490, 490, 0},           // uncapped
		{490, 600, 0},           // budget above demand
		{490, 160, 1},           // capped to idle: all dynamic power removed
		{490, 325, 0.5},         // halfway
		{160, 100, 0},           // demand at idle cannot be capped
		{100, 50, 0},            // demand below idle
		{490, 100, 1},           // below idle clamps to 1
		{420, 344, 76.0 / 260},  // Table 2 local-priority SA
		{420, 314, 106.0 / 260}, // Table 2 no-priority SA
	}
	for i, c := range cases {
		if got := m.CapRatio(c.demand, c.budget); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("case %d: CapRatio(%v, %v) = %v, want %v", i, c.demand, c.budget, got, c.want)
		}
	}
}

func TestCapRatioBounds(t *testing.T) {
	m := DefaultServerModel()
	f := func(d, b float64) bool {
		demand := Watts(math.Abs(math.Mod(d, 600)))
		budget := Watts(math.Abs(math.Mod(b, 600)))
		r := m.CapRatio(demand, budget)
		return r >= 0 && r <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEfficiencyCurveValidation(t *testing.T) {
	if _, err := NewEfficiencyCurve(nil); err == nil {
		t.Error("empty curve should fail")
	}
	if _, err := NewEfficiencyCurve([][2]float64{{0, 0.9}}); err == nil {
		t.Error("zero load fraction should fail")
	}
	if _, err := NewEfficiencyCurve([][2]float64{{0.5, 1.5}}); err == nil {
		t.Error("efficiency above 1 should fail")
	}
	if _, err := NewEfficiencyCurve([][2]float64{{0.5, 0.9}, {0.5, 0.91}}); err == nil {
		t.Error("non-increasing loads should fail")
	}
	if _, err := NewEfficiencyCurve([][2]float64{{0.2, 0.9}, {0.8, 0.93}}); err != nil {
		t.Errorf("valid curve rejected: %v", err)
	}
}

func TestEfficiencyCurveInterpolation(t *testing.T) {
	c, err := NewEfficiencyCurve([][2]float64{{0.2, 0.90}, {0.8, 0.96}})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.At(0.1); got != 0.90 {
		t.Errorf("below range: got %v, want clamp to 0.90", got)
	}
	if got := c.At(0.9); got != 0.96 {
		t.Errorf("above range: got %v, want clamp to 0.96", got)
	}
	if got := c.At(0.5); math.Abs(got-0.93) > 1e-12 {
		t.Errorf("midpoint: got %v, want 0.93", got)
	}
}

func TestFlatEfficiency(t *testing.T) {
	c := FlatEfficiency(0.92)
	for _, f := range []float64{0.01, 0.5, 1.0} {
		if got := c.At(f); got != 0.92 {
			t.Errorf("At(%v) = %v, want 0.92", f, got)
		}
	}
}

func TestACDCConversionRoundTrip(t *testing.T) {
	c := DefaultEfficiencyCurve()
	rated := Watts(500)
	for _, dc := range []Watts{50, 150, 250, 400, 500} {
		ac := c.DCToAC(dc, rated)
		if ac <= dc {
			t.Errorf("AC input %v should exceed DC output %v", ac, dc)
		}
		back := c.ACToDC(ac, rated)
		if !ApproxEqual(back, dc, 1.0) {
			t.Errorf("round trip: DC %v -> AC %v -> DC %v", dc, ac, back)
		}
	}
}

func TestACDCConversionZeroAndNegative(t *testing.T) {
	c := FlatEfficiency(0.9)
	if c.DCToAC(0, 500) != 0 || c.DCToAC(-5, 500) != 0 {
		t.Error("non-positive DC should convert to 0 AC")
	}
	if c.ACToDC(0, 500) != 0 || c.ACToDC(-5, 500) != 0 {
		t.Error("non-positive AC should convert to 0 DC")
	}
}

func TestFlatEfficiencyConversionExact(t *testing.T) {
	c := FlatEfficiency(0.9)
	ac := c.DCToAC(90, 0) // zero rated capacity: operating point pegged at 1
	if !ApproxEqual(ac, 100, 1e-9) {
		t.Errorf("DCToAC(90) with k=0.9 = %v, want 100", ac)
	}
	dc := c.ACToDC(100, 0)
	if !ApproxEqual(dc, 90, 1e-9) {
		t.Errorf("ACToDC(100) with k=0.9 = %v, want 90", dc)
	}
}
