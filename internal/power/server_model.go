package power

import (
	"errors"
	"fmt"
)

// ServerModel describes the controllable power envelope of a server class,
// matching the parameters in Table 4 of the paper. Idle is the power drawn
// at 0% CPU utilization with no throttling; CapMin is the power at the
// lowest performance state (the floor a power cap can enforce); CapMax is
// the power at the highest performance state running the most
// power-demanding workload (budget above CapMax is wasted).
type ServerModel struct {
	Idle   Watts
	CapMin Watts
	CapMax Watts
}

// DefaultServerModel reproduces the server class used throughout the paper's
// evaluation: idle 160 W, Pcap_min 270 W, Pcap_max 490 W.
func DefaultServerModel() ServerModel {
	return ServerModel{Idle: 160, CapMin: 270, CapMax: 490}
}

// Validate checks the envelope ordering invariants.
func (m ServerModel) Validate() error {
	switch {
	case m.Idle < 0:
		return fmt.Errorf("power: idle %v is negative", m.Idle)
	case m.CapMin < m.Idle:
		return fmt.Errorf("power: cap min %v below idle %v", m.CapMin, m.Idle)
	case m.CapMax < m.CapMin:
		return fmt.Errorf("power: cap max %v below cap min %v", m.CapMax, m.CapMin)
	}
	return nil
}

// PowerAt returns the full-performance (uncapped) power demand of a server
// running at the given CPU utilization in [0, 1]. The relationship is the
// linear model of Fan et al. [2], which the paper uses for its capacity
// study: P(u) = idle + u * (max - idle).
func (m ServerModel) PowerAt(utilization float64) Watts {
	if utilization < 0 {
		utilization = 0
	}
	if utilization > 1 {
		utilization = 1
	}
	return m.Idle + Watts(utilization)*(m.CapMax-m.Idle)
}

// UtilizationFor inverts PowerAt: the utilization at which the uncapped
// demand equals p. Values outside the envelope clamp to [0, 1].
func (m ServerModel) UtilizationFor(p Watts) float64 {
	if m.CapMax == m.Idle {
		return 0
	}
	u := float64((p - m.Idle) / (m.CapMax - m.Idle))
	if u < 0 {
		return 0
	}
	if u > 1 {
		return 1
	}
	return u
}

// DynamicRange is the controllable span CapMax - CapMin.
func (m ServerModel) DynamicRange() Watts { return m.CapMax - m.CapMin }

// CapRatio computes the paper's capping-impact metric (Section 6.4):
//
//	CapRatio = (Demand - Budget) / (Demand - Idle)
//
// the fraction of the server's dynamic (non-idle) power demand removed by
// the assigned budget. A ratio of 0 means uncapped; 1 means the budget
// removes all dynamic power. Budgets above demand yield 0. A demand at or
// below idle power cannot be capped, so the ratio is 0 there as well.
func (m ServerModel) CapRatio(demand, budget Watts) float64 {
	if demand <= m.Idle || budget >= demand {
		return 0
	}
	ratio := float64((demand - budget) / (demand - m.Idle))
	if ratio < 0 {
		return 0
	}
	if ratio > 1 {
		return 1
	}
	return ratio
}

// ErrUnknownEfficiency reports an efficiency curve evaluated outside its
// defined domain.
var ErrUnknownEfficiency = errors.New("power: efficiency undefined for load")

// EfficiencyCurve maps a power supply's output (DC) load fraction to its
// conversion efficiency (DC out / AC in). Real supplies publish these as
// 80 PLUS-style load/efficiency tables; CapMaestro uses the curve to convert
// between the AC domain (what breakers and budgets see) and the DC domain
// (what the node manager caps).
type EfficiencyCurve struct {
	// loadPoints and effPoints are parallel arrays of (load fraction,
	// efficiency) samples sorted by load fraction; evaluation linearly
	// interpolates between them.
	loadPoints []float64
	effPoints  []float64
}

// NewEfficiencyCurve builds a curve from (loadFraction, efficiency) pairs.
// Points must be sorted by load fraction, with fractions in (0, 1] and
// efficiencies in (0, 1].
func NewEfficiencyCurve(points [][2]float64) (*EfficiencyCurve, error) {
	if len(points) == 0 {
		return nil, errors.New("power: efficiency curve needs at least one point")
	}
	c := &EfficiencyCurve{}
	prev := -1.0
	for _, p := range points {
		load, eff := p[0], p[1]
		if load <= 0 || load > 1 {
			return nil, fmt.Errorf("power: load fraction %v out of (0,1]", load)
		}
		if eff <= 0 || eff > 1 {
			return nil, fmt.Errorf("power: efficiency %v out of (0,1]", eff)
		}
		if load <= prev {
			return nil, fmt.Errorf("power: load fractions not strictly increasing at %v", load)
		}
		prev = load
		c.loadPoints = append(c.loadPoints, load)
		c.effPoints = append(c.effPoints, eff)
	}
	return c, nil
}

// FlatEfficiency returns a curve with constant efficiency k, the
// single-coefficient model the paper's controller uses ("k can be determined
// from the power supply specification", Section 4.2).
func FlatEfficiency(k float64) *EfficiencyCurve {
	c, err := NewEfficiencyCurve([][2]float64{{1, k}})
	if err != nil {
		panic(err) // only reachable for k outside (0,1], a programming error
	}
	return c
}

// DefaultEfficiencyCurve models a contemporary 80 PLUS Platinum server
// supply: ~89% efficient at 10% load rising to ~94% at half load and easing
// to ~91% at full load.
func DefaultEfficiencyCurve() *EfficiencyCurve {
	c, err := NewEfficiencyCurve([][2]float64{
		{0.10, 0.89},
		{0.20, 0.92},
		{0.50, 0.94},
		{0.75, 0.93},
		{1.00, 0.91},
	})
	if err != nil {
		panic(err)
	}
	return c
}

// At returns the efficiency at the given load fraction, linearly
// interpolating between samples and clamping outside the sampled range.
func (c *EfficiencyCurve) At(loadFraction float64) float64 {
	pts := c.loadPoints
	if loadFraction <= pts[0] {
		return c.effPoints[0]
	}
	last := len(pts) - 1
	if loadFraction >= pts[last] {
		return c.effPoints[last]
	}
	for i := 1; i <= last; i++ {
		if loadFraction <= pts[i] {
			span := pts[i] - pts[i-1]
			t := (loadFraction - pts[i-1]) / span
			return c.effPoints[i-1] + t*(c.effPoints[i]-c.effPoints[i-1])
		}
	}
	return c.effPoints[last]
}

// DCToAC converts a DC output power to the AC input power drawn from the
// feed, given the supply's rated DC capacity (used to locate the operating
// point on the curve).
func (c *EfficiencyCurve) DCToAC(dc, ratedDC Watts) Watts {
	if dc <= 0 {
		return 0
	}
	frac := 1.0
	if ratedDC > 0 {
		frac = float64(dc / ratedDC)
	}
	eff := c.At(frac)
	return dc / Watts(eff)
}

// ACToDC converts an AC input power to the DC output delivered, given the
// supply's rated DC capacity.
func (c *EfficiencyCurve) ACToDC(ac, ratedDC Watts) Watts {
	if ac <= 0 {
		return 0
	}
	// The operating point depends on DC output, which is what we are
	// solving for; a couple of fixed-point iterations converge because the
	// curve is nearly flat.
	dc := ac * Watts(c.At(1))
	for i := 0; i < 4; i++ {
		frac := 1.0
		if ratedDC > 0 {
			frac = float64(dc / ratedDC)
		}
		dc = ac * Watts(c.At(frac))
	}
	return dc
}
