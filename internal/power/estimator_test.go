package power

import (
	"math"
	"math/rand"
	"testing"
)

func TestEstimatorEmpty(t *testing.T) {
	e := NewDemandEstimator(DefaultDemandWindow)
	if _, ok := e.Demand(); ok {
		t.Error("empty estimator should not report a demand")
	}
}

func TestEstimatorUnthrottledUsesMeasurement(t *testing.T) {
	e := NewDemandEstimator(8)
	for i := 0; i < 8; i++ {
		e.Observe(Watts(400+float64(i%2)), 0)
	}
	d, ok := e.Demand()
	if !ok {
		t.Fatal("expected a demand estimate")
	}
	if !ApproxEqual(d, 400.5, 1e-9) {
		t.Errorf("demand = %v, want mean 400.5", d)
	}
}

func TestEstimatorRegressionRecoversLine(t *testing.T) {
	// Server power follows P = 430 - 200*throttle. The estimator should
	// recover the intercept (the 0%-throttle power) from throttled samples.
	e := NewDemandEstimator(DefaultDemandWindow)
	for i := 0; i < DefaultDemandWindow; i++ {
		th := 0.1 + 0.05*float64(i%6)
		e.Observe(Watts(430-200*th), th)
	}
	d, ok := e.Demand()
	if !ok {
		t.Fatal("expected a demand estimate")
	}
	if !ApproxEqual(d, 430, 0.5) {
		t.Errorf("demand = %v, want ~430", d)
	}
}

func TestEstimatorRegressionWithNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	e := NewDemandEstimator(64)
	for i := 0; i < 64; i++ {
		th := 0.05 + 0.4*rng.Float64()
		noise := rng.NormFloat64() * 2
		e.Observe(Watts(410-150*th+noise), th)
	}
	d, ok := e.Demand()
	if !ok {
		t.Fatal("expected a demand estimate")
	}
	if math.Abs(float64(d)-410) > 8 {
		t.Errorf("noisy regression demand = %v, want within 8 W of 410", d)
	}
}

func TestEstimatorDegenerateConstantThrottle(t *testing.T) {
	e := NewDemandEstimator(8)
	// One unthrottled reading then constant throttle: the regression line
	// passes through (0, 425) and (0.4, 300), so the intercept recovers the
	// unthrottled power.
	e.Observe(425, 0)
	for i := 0; i < 7; i++ {
		e.Observe(300, 0.4)
	}
	d, ok := e.Demand()
	if !ok {
		t.Fatal("expected a demand estimate")
	}
	if !ApproxEqual(d, 425, 1e-6) {
		t.Errorf("demand = %v, want intercept 425", d)
	}
}

func TestEstimatorDegenerateNoUnthrottled(t *testing.T) {
	e := NewDemandEstimator(8)
	for i := 0; i < 8; i++ {
		e.Observe(310, 0.3)
	}
	d, ok := e.Demand()
	if !ok {
		t.Fatal("expected a demand estimate")
	}
	if d != 310 {
		t.Errorf("demand = %v, want conservative mean 310", d)
	}
}

func TestEstimatorWindowSlides(t *testing.T) {
	e := NewDemandEstimator(4)
	// Fill with old readings at one demand level...
	for i := 0; i < 4; i++ {
		e.Observe(300, 0)
	}
	// ...then overwrite the whole window with a new level.
	for i := 0; i < 4; i++ {
		e.Observe(480, 0)
	}
	d, _ := e.Demand()
	if d != 480 {
		t.Errorf("demand = %v, want 480 after window slides", d)
	}
}

func TestEstimatorThrottleClamped(t *testing.T) {
	e := NewDemandEstimator(4)
	e.Observe(400, -0.5) // clamps to 0: counts as unthrottled
	d, ok := e.Demand()
	if !ok || d != 400 {
		t.Errorf("demand = %v ok=%v, want 400 from clamped-unthrottled sample", d, ok)
	}
}

func TestEstimatorReset(t *testing.T) {
	e := NewDemandEstimator(4)
	e.Observe(400, 0)
	e.Reset()
	if _, ok := e.Demand(); ok {
		t.Error("estimator should be empty after Reset")
	}
}

func TestEstimatorMinimumWindow(t *testing.T) {
	e := NewDemandEstimator(0) // clamps to 2
	e.Observe(350, 0.1)
	if _, ok := e.Demand(); ok {
		t.Error("single throttled sample should not yield an estimate")
	}
	e.Observe(330, 0.2)
	if _, ok := e.Demand(); !ok {
		t.Error("two samples should yield an estimate")
	}
}

func TestEstimatorNegativeInterceptClamps(t *testing.T) {
	e := NewDemandEstimator(4)
	// Construct samples whose regression intercept is negative.
	e.Observe(10, 0.9)
	e.Observe(100, 0.1)
	e.Observe(5, 0.95)
	e.Observe(105, 0.05)
	d, ok := e.Demand()
	if !ok {
		t.Fatal("expected estimate")
	}
	if d < 0 {
		t.Errorf("demand %v must not be negative", d)
	}
}
