// Package power provides the basic electrical units and server power models
// that the rest of CapMaestro builds on: watt arithmetic, power-supply
// efficiency curves, the linear utilization→power server model used by the
// capacity study, and the regression-based power-demand estimator described
// in Section 5 of the paper.
package power

import (
	"fmt"
	"math"
)

// Watts is an amount of electrical power. All budgets, limits, demands, and
// measurements in CapMaestro are expressed in watts. Using a named float64
// keeps arithmetic natural while making signatures self-describing.
type Watts float64

// Kilowatts constructs a Watts value from kilowatts.
func Kilowatts(kw float64) Watts { return Watts(kw * 1000) }

// KW reports the value in kilowatts.
func (w Watts) KW() float64 { return float64(w) / 1000 }

// String formats the power with a fixed single-decimal precision, switching
// to kW above 10 kW for readability in traces and experiment output.
func (w Watts) String() string {
	if math.Abs(float64(w)) >= 10000 {
		return fmt.Sprintf("%.2fkW", w.KW())
	}
	return fmt.Sprintf("%.1fW", float64(w))
}

// Clamp limits w to the inclusive range [lo, hi].
func (w Watts) Clamp(lo, hi Watts) Watts {
	if w < lo {
		return lo
	}
	if w > hi {
		return hi
	}
	return w
}

// Max returns the larger of a and b.
func Max(a, b Watts) Watts {
	if a > b {
		return a
	}
	return b
}

// Min returns the smaller of a and b.
func Min(a, b Watts) Watts {
	if a < b {
		return a
	}
	return b
}

// Sum adds a slice of watt values.
func Sum(ws []Watts) Watts {
	var total Watts
	for _, w := range ws {
		total += w
	}
	return total
}

// ApproxEqual reports whether a and b differ by at most eps watts. The
// allocation algorithms and tests use it to absorb floating-point noise.
func ApproxEqual(a, b, eps Watts) bool {
	return math.Abs(float64(a-b)) <= float64(eps)
}
