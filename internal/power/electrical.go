package power

import "math"

// Circuit breakers are rated in amperes; the paper converts them to their
// equivalent power values (Section 2.1). These helpers perform the
// conversions for the voltages in Figure 1's distribution chain (230 V
// phase voltage, 400 V line-to-line).

// Amps is an electrical current.
type Amps float64

// Volts is an electrical potential.
type Volts float64

// Voltages used by the paper's distribution infrastructure (Figure 1).
const (
	// PhaseVoltage is the line (phase-to-neutral) voltage at which server
	// supplies receive power from CDU outlets.
	PhaseVoltage Volts = 230
	// LineToLineVoltage is the 3-phase line-to-line voltage after the
	// second transformer stage.
	LineToLineVoltage Volts = 400
)

// SinglePhaseRating converts a single-phase breaker's current rating to
// watts at the given phase voltage: P = V × I. The paper's 30 A CDU
// breaker at 230 V is exactly the 6.9 kW per-phase CDU rating of Table 4.
func SinglePhaseRating(current Amps, phase Volts) Watts {
	if current <= 0 || phase <= 0 {
		return 0
	}
	return Watts(float64(current) * float64(phase))
}

// ThreePhaseRating converts a 3-phase breaker's per-phase current rating
// to total watts at the given line-to-line voltage: P = √3 × V_LL × I.
func ThreePhaseRating(current Amps, lineToLine Volts) Watts {
	if current <= 0 || lineToLine <= 0 {
		return 0
	}
	return Watts(math.Sqrt(3) * float64(lineToLine) * float64(current))
}

// CurrentAt inverts SinglePhaseRating: the per-phase current drawn by a
// load at the given phase voltage.
func CurrentAt(load Watts, phase Volts) Amps {
	if phase <= 0 {
		return 0
	}
	return Amps(float64(load) / float64(phase))
}
