// Package logging centralizes the slog setup shared by the repo's
// binaries: a -log-level / -log-format flag pair and a constructor that
// turns them into a configured *slog.Logger.
package logging

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// Options holds the values of the logging flags.
type Options struct {
	Level  string // debug | info | warn | error
	Format string // text | json
}

// RegisterFlags registers -log-level and -log-format on fs (the process
// flag set, typically flag.CommandLine) and returns the Options the
// parsed values land in.
func RegisterFlags(fs *flag.FlagSet) *Options {
	o := &Options{Level: "info", Format: "text"}
	fs.StringVar(&o.Level, "log-level", o.Level, "log verbosity: debug | info | warn | error")
	fs.StringVar(&o.Format, "log-format", o.Format, "log output format: text | json")
	return o
}

// Logger builds a logger writing to w per the parsed flags.
func (o *Options) Logger(w io.Writer) (*slog.Logger, error) {
	return New(w, o.Level, o.Format)
}

// New builds a logger writing to w at the given level ("debug", "info",
// "warn", "error") in the given format ("text" or "json").
func New(w io.Writer, level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "info", "":
		lvl = slog.LevelInfo
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("logging: unknown level %q (want debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "text", "":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("logging: unknown format %q (want text|json)", format)
	}
}
