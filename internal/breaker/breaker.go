// Package breaker models molded-case circuit breakers of the kind that
// protect every branch of a data-center power distribution hierarchy
// (Section 2.1 of the paper). The model is an inverse-time thermal trip
// curve calibrated to the UL 489 datum the paper relies on: a breaker
// loaded to 160% of its rating operates for at least 30 seconds before
// tripping. CapMaestro's safety argument is that server power capping acts
// an order of magnitude faster than breaker trip times, so overloads caused
// by a feed failure are shed before the surviving feed's breakers open.
//
// The thermal model integrates overload heating over time: under a constant
// load fraction L > 1 the accumulated heat grows at rate L²−1, and the
// breaker trips when the accumulated heat reaches the curve constant K.
// This yields the classic inverse-time characteristic
//
//	timeToTrip(L) = K / (L² − 1)
//
// with K chosen so timeToTrip(1.6) = 30 s. Loads at or below the hold
// threshold never trip and let the accumulated heat decay.
package breaker

import (
	"fmt"
	"math"
	"time"

	"capmaestro/internal/power"
)

// DefaultCurveConstant makes timeToTrip(160%) exactly 30 s:
// K = 30 × (1.6² − 1) = 46.8.
const DefaultCurveConstant = 46.8

// DefaultHoldFraction is the load fraction at or below which a breaker
// carries current indefinitely. Thermal-magnetic breakers are required to
// hold 100% of rating continuously; we allow a small margin.
const DefaultHoldFraction = 1.0

// DefaultInstantaneousFraction is the load fraction at which the magnetic
// (instantaneous) element opens the breaker with no thermal delay. Typical
// molded-case breakers trip instantly somewhere between 5× and 10× rating.
const DefaultInstantaneousFraction = 8.0

// DefaultCoolingTimeConstant governs how quickly accumulated heat decays
// once the load drops back to or below the hold threshold.
const DefaultCoolingTimeConstant = 60 * time.Second

// Breaker is a thermal-magnetic circuit breaker with a power rating.
// The zero value is not usable; construct with New.
type Breaker struct {
	rating        power.Watts
	curveK        float64
	holdFraction  float64
	instFraction  float64
	coolingTau    time.Duration
	heat          float64
	tripped       bool
	timeUntilTrip time.Duration // valid only immediately after Apply
}

// Config adjusts the trip characteristics of a breaker. Zero fields take
// the package defaults.
type Config struct {
	CurveConstant         float64
	HoldFraction          float64
	InstantaneousFraction float64
	CoolingTimeConstant   time.Duration
}

// New creates a breaker with the given power rating (the 100% point of its
// trip curve, already converted from the current rating as the paper does).
func New(rating power.Watts, cfg Config) (*Breaker, error) {
	if rating <= 0 {
		return nil, fmt.Errorf("breaker: rating %v must be positive", rating)
	}
	b := &Breaker{
		rating:       rating,
		curveK:       cfg.CurveConstant,
		holdFraction: cfg.HoldFraction,
		instFraction: cfg.InstantaneousFraction,
		coolingTau:   cfg.CoolingTimeConstant,
	}
	if b.curveK == 0 {
		b.curveK = DefaultCurveConstant
	}
	if b.holdFraction == 0 {
		b.holdFraction = DefaultHoldFraction
	}
	if b.instFraction == 0 {
		b.instFraction = DefaultInstantaneousFraction
	}
	if b.coolingTau == 0 {
		b.coolingTau = DefaultCoolingTimeConstant
	}
	if b.holdFraction < 1 {
		return nil, fmt.Errorf("breaker: hold fraction %v below 1 would trip at rated load", b.holdFraction)
	}
	if b.instFraction <= b.holdFraction {
		return nil, fmt.Errorf("breaker: instantaneous fraction %v must exceed hold fraction %v",
			b.instFraction, b.holdFraction)
	}
	return b, nil
}

// MustNew is New but panics on error; for static configuration.
func MustNew(rating power.Watts, cfg Config) *Breaker {
	b, err := New(rating, cfg)
	if err != nil {
		panic(err)
	}
	return b
}

// Rating returns the breaker's 100% power rating.
func (b *Breaker) Rating() power.Watts { return b.rating }

// Tripped reports whether the breaker has opened.
func (b *Breaker) Tripped() bool { return b.tripped }

// Heat exposes the normalized thermal accumulator (0 = cold, curve constant
// = trip) for telemetry and tests.
func (b *Breaker) Heat() float64 { return b.heat }

// RiskSnapshot is a point-in-time view of how close a breaker is to
// tripping, combining the thermal accumulator with the instantaneous
// load. It feeds the SLO layer's per-feed trip-risk gauge.
type RiskSnapshot struct {
	Rating power.Watts `json:"rating_watts"`
	Load   power.Watts `json:"load_watts"`
	// LoadFraction is Load/Rating (1.0 = at rating).
	LoadFraction float64 `json:"load_fraction"`
	// Heat is the raw thermal accumulator (trip at the curve constant).
	Heat float64 `json:"heat"`
	// Risk is the normalized trip risk in [0, 1]: accumulated heat over
	// the trip threshold, forced to 1 once tripped.
	Risk float64 `json:"risk"`
	// Overloaded reports a load above the hold threshold — heat is
	// accumulating and the breaker will eventually trip if it persists.
	Overloaded bool `json:"overloaded"`
	Tripped    bool `json:"tripped"`
	// TimeToTrip is the remaining time before the breaker opens if the
	// load persists, accounting for heat already accumulated (0 when not
	// overloaded, or when tripping is instantaneous or already past).
	TimeToTrip time.Duration `json:"time_to_trip_ns,omitempty"`
}

// RiskSnapshot reports the breaker's trip risk under the given load.
// The load is a parameter — not retained from Apply — so callers can
// also probe hypothetical loads.
func (b *Breaker) RiskSnapshot(load power.Watts) RiskSnapshot {
	frac := float64(load / b.rating)
	rs := RiskSnapshot{
		Rating:       b.rating,
		Load:         load,
		LoadFraction: frac,
		Heat:         b.heat,
		Tripped:      b.tripped,
	}
	rs.Risk = math.Max(0, math.Min(1, b.heat/b.curveK))
	if b.tripped {
		rs.Risk = 1
		return rs
	}
	switch {
	case frac >= b.instFraction:
		rs.Overloaded = true
	case frac > b.holdFraction:
		rs.Overloaded = true
		if remaining := (b.curveK - b.heat) / (frac*frac - 1); remaining > 0 {
			rs.TimeToTrip = time.Duration(remaining * float64(time.Second))
		}
	}
	return rs
}

// Reset closes a tripped breaker and clears its thermal state, modelling a
// manual reset by an operator.
func (b *Breaker) Reset() {
	b.tripped = false
	b.heat = 0
}

// TimeToTrip returns how long the breaker would carry the given constant
// load before tripping, from a cold start. It returns (0, true) for loads in
// the instantaneous region, (d, true) for overloads, and (0, false) for
// loads the breaker holds forever.
func (b *Breaker) TimeToTrip(load power.Watts) (time.Duration, bool) {
	frac := float64(load / b.rating)
	switch {
	case frac >= b.instFraction:
		return 0, true
	case frac <= b.holdFraction:
		return 0, false
	default:
		seconds := b.curveK / (frac*frac - 1)
		return time.Duration(seconds * float64(time.Second)), true
	}
}

// Apply advances the breaker's thermal state by dt under the given load and
// reports whether the breaker is (now) tripped. Once tripped, the breaker
// stays open until Reset.
func (b *Breaker) Apply(load power.Watts, dt time.Duration) bool {
	if b.tripped {
		return true
	}
	if dt <= 0 {
		return false
	}
	frac := float64(load / b.rating)
	if frac >= b.instFraction {
		b.tripped = true
		return true
	}
	sec := dt.Seconds()
	if frac <= b.holdFraction {
		// Exponential cooling toward zero heat.
		b.heat *= math.Exp(-sec / b.coolingTau.Seconds())
		if b.heat < 1e-9 {
			b.heat = 0
		}
		return false
	}
	b.heat += (frac*frac - 1) * sec
	if b.heat >= b.curveK {
		b.tripped = true
	}
	return b.tripped
}
