package breaker

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"capmaestro/internal/power"
)

func mustBreaker(t *testing.T, rating power.Watts) *Breaker {
	t.Helper()
	b, err := New(rating, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, Config{}); err == nil {
		t.Error("zero rating should fail")
	}
	if _, err := New(-100, Config{}); err == nil {
		t.Error("negative rating should fail")
	}
	if _, err := New(100, Config{HoldFraction: 0.5}); err == nil {
		t.Error("hold fraction below 1 should fail")
	}
	if _, err := New(100, Config{HoldFraction: 2, InstantaneousFraction: 1.5}); err == nil {
		t.Error("instantaneous below hold should fail")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew with invalid config should panic")
		}
	}()
	MustNew(-1, Config{})
}

func TestUL489Datum(t *testing.T) {
	// The paper's safety window: a breaker at 160% load operates for at
	// least 30 seconds before tripping.
	b := mustBreaker(t, 1000)
	d, trips := b.TimeToTrip(1600)
	if !trips {
		t.Fatal("160% load must eventually trip")
	}
	if math.Abs(d.Seconds()-30) > 1e-6 {
		t.Errorf("time to trip at 160%% = %v, want 30s", d)
	}
}

func TestHoldRegionNeverTrips(t *testing.T) {
	b := mustBreaker(t, 1000)
	if _, trips := b.TimeToTrip(1000); trips {
		t.Error("rated load must hold forever")
	}
	if _, trips := b.TimeToTrip(500); trips {
		t.Error("half load must hold forever")
	}
	for i := 0; i < 10000; i++ {
		if b.Apply(1000, time.Second) {
			t.Fatal("breaker tripped at rated load")
		}
	}
}

func TestInstantaneousRegion(t *testing.T) {
	b := mustBreaker(t, 1000)
	d, trips := b.TimeToTrip(8000)
	if !trips || d != 0 {
		t.Errorf("8x load should trip instantly, got (%v, %v)", d, trips)
	}
	if !b.Apply(9000, time.Millisecond) {
		t.Error("Apply in instantaneous region should trip immediately")
	}
}

func TestThermalAccumulationMatchesCurve(t *testing.T) {
	// Integrating the thermal model at a constant load should trip at the
	// analytic inverse-time point.
	b := mustBreaker(t, 1000)
	load := power.Watts(1600)
	var elapsed time.Duration
	step := 100 * time.Millisecond
	for !b.Apply(load, step) {
		elapsed += step
		if elapsed > time.Minute {
			t.Fatal("breaker did not trip within a minute at 160%")
		}
	}
	elapsed += step
	if elapsed < 30*time.Second || elapsed > 31*time.Second {
		t.Errorf("tripped after %v, want ~30s", elapsed)
	}
}

func TestCappingWindow(t *testing.T) {
	// CapMaestro's end-to-end capping latency is at most 14 s. A breaker
	// overloaded to 160% for 14 s and then relieved must not trip.
	b := mustBreaker(t, 1000)
	for i := 0; i < 14; i++ {
		if b.Apply(1600, time.Second) {
			t.Fatalf("tripped after %ds at 160%%, before the 30 s window", i+1)
		}
	}
	// Capping brings the load back to 80%.
	for i := 0; i < 600; i++ {
		if b.Apply(800, time.Second) {
			t.Fatal("tripped after load was shed")
		}
	}
	if b.Heat() > 0.01 {
		t.Errorf("heat should decay to near zero, still %v", b.Heat())
	}
}

func TestCoolingDecaysHeat(t *testing.T) {
	b := mustBreaker(t, 1000)
	b.Apply(1600, 10*time.Second)
	h1 := b.Heat()
	if h1 <= 0 {
		t.Fatal("expected accumulated heat")
	}
	b.Apply(500, 30*time.Second)
	if b.Heat() >= h1 {
		t.Error("heat should decay under light load")
	}
}

func TestTrippedLatches(t *testing.T) {
	b := mustBreaker(t, 100)
	b.Apply(1000, time.Second)
	if !b.Tripped() {
		t.Fatal("expected trip")
	}
	if !b.Apply(0, time.Second) {
		t.Error("tripped breaker must stay tripped under zero load")
	}
	b.Reset()
	if b.Tripped() || b.Heat() != 0 {
		t.Error("Reset should close the breaker and clear heat")
	}
}

func TestApplyZeroDuration(t *testing.T) {
	b := mustBreaker(t, 100)
	if b.Apply(1000, 0) {
		t.Error("zero-duration apply must not trip")
	}
}

func TestTimeToTripMonotone(t *testing.T) {
	// Higher overloads trip no slower than lower overloads.
	b := mustBreaker(t, 1000)
	f := func(a, c float64) bool {
		la := 1.05 + math.Abs(math.Mod(a, 6))
		lc := 1.05 + math.Abs(math.Mod(c, 6))
		if la > lc {
			la, lc = lc, la
		}
		da, ta := b.TimeToTrip(power.Watts(la * 1000))
		dc, tc := b.TimeToTrip(power.Watts(lc * 1000))
		if !ta || !tc {
			return false
		}
		return dc <= da
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCustomCurveConstant(t *testing.T) {
	b, err := New(1000, Config{CurveConstant: 93.6}) // doubles trip times
	if err != nil {
		t.Fatal(err)
	}
	d, _ := b.TimeToTrip(1600)
	if math.Abs(d.Seconds()-60) > 1e-9 {
		t.Errorf("custom curve: got %v, want 60s", d)
	}
}
