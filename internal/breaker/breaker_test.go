package breaker

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"capmaestro/internal/power"
)

func mustBreaker(t *testing.T, rating power.Watts) *Breaker {
	t.Helper()
	b, err := New(rating, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, Config{}); err == nil {
		t.Error("zero rating should fail")
	}
	if _, err := New(-100, Config{}); err == nil {
		t.Error("negative rating should fail")
	}
	if _, err := New(100, Config{HoldFraction: 0.5}); err == nil {
		t.Error("hold fraction below 1 should fail")
	}
	if _, err := New(100, Config{HoldFraction: 2, InstantaneousFraction: 1.5}); err == nil {
		t.Error("instantaneous below hold should fail")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew with invalid config should panic")
		}
	}()
	MustNew(-1, Config{})
}

func TestUL489Datum(t *testing.T) {
	// The paper's safety window: a breaker at 160% load operates for at
	// least 30 seconds before tripping.
	b := mustBreaker(t, 1000)
	d, trips := b.TimeToTrip(1600)
	if !trips {
		t.Fatal("160% load must eventually trip")
	}
	if math.Abs(d.Seconds()-30) > 1e-6 {
		t.Errorf("time to trip at 160%% = %v, want 30s", d)
	}
}

func TestHoldRegionNeverTrips(t *testing.T) {
	b := mustBreaker(t, 1000)
	if _, trips := b.TimeToTrip(1000); trips {
		t.Error("rated load must hold forever")
	}
	if _, trips := b.TimeToTrip(500); trips {
		t.Error("half load must hold forever")
	}
	for i := 0; i < 10000; i++ {
		if b.Apply(1000, time.Second) {
			t.Fatal("breaker tripped at rated load")
		}
	}
}

func TestInstantaneousRegion(t *testing.T) {
	b := mustBreaker(t, 1000)
	d, trips := b.TimeToTrip(8000)
	if !trips || d != 0 {
		t.Errorf("8x load should trip instantly, got (%v, %v)", d, trips)
	}
	if !b.Apply(9000, time.Millisecond) {
		t.Error("Apply in instantaneous region should trip immediately")
	}
}

func TestThermalAccumulationMatchesCurve(t *testing.T) {
	// Integrating the thermal model at a constant load should trip at the
	// analytic inverse-time point.
	b := mustBreaker(t, 1000)
	load := power.Watts(1600)
	var elapsed time.Duration
	step := 100 * time.Millisecond
	for !b.Apply(load, step) {
		elapsed += step
		if elapsed > time.Minute {
			t.Fatal("breaker did not trip within a minute at 160%")
		}
	}
	elapsed += step
	if elapsed < 30*time.Second || elapsed > 31*time.Second {
		t.Errorf("tripped after %v, want ~30s", elapsed)
	}
}

func TestCappingWindow(t *testing.T) {
	// CapMaestro's end-to-end capping latency is at most 14 s. A breaker
	// overloaded to 160% for 14 s and then relieved must not trip.
	b := mustBreaker(t, 1000)
	for i := 0; i < 14; i++ {
		if b.Apply(1600, time.Second) {
			t.Fatalf("tripped after %ds at 160%%, before the 30 s window", i+1)
		}
	}
	// Capping brings the load back to 80%.
	for i := 0; i < 600; i++ {
		if b.Apply(800, time.Second) {
			t.Fatal("tripped after load was shed")
		}
	}
	if b.Heat() > 0.01 {
		t.Errorf("heat should decay to near zero, still %v", b.Heat())
	}
}

func TestCoolingDecaysHeat(t *testing.T) {
	b := mustBreaker(t, 1000)
	b.Apply(1600, 10*time.Second)
	h1 := b.Heat()
	if h1 <= 0 {
		t.Fatal("expected accumulated heat")
	}
	b.Apply(500, 30*time.Second)
	if b.Heat() >= h1 {
		t.Error("heat should decay under light load")
	}
}

func TestTrippedLatches(t *testing.T) {
	b := mustBreaker(t, 100)
	b.Apply(1000, time.Second)
	if !b.Tripped() {
		t.Fatal("expected trip")
	}
	if !b.Apply(0, time.Second) {
		t.Error("tripped breaker must stay tripped under zero load")
	}
	b.Reset()
	if b.Tripped() || b.Heat() != 0 {
		t.Error("Reset should close the breaker and clear heat")
	}
}

func TestApplyZeroDuration(t *testing.T) {
	b := mustBreaker(t, 100)
	if b.Apply(1000, 0) {
		t.Error("zero-duration apply must not trip")
	}
}

func TestTimeToTripMonotone(t *testing.T) {
	// Higher overloads trip no slower than lower overloads.
	b := mustBreaker(t, 1000)
	f := func(a, c float64) bool {
		la := 1.05 + math.Abs(math.Mod(a, 6))
		lc := 1.05 + math.Abs(math.Mod(c, 6))
		if la > lc {
			la, lc = lc, la
		}
		da, ta := b.TimeToTrip(power.Watts(la * 1000))
		dc, tc := b.TimeToTrip(power.Watts(lc * 1000))
		if !ta || !tc {
			return false
		}
		return dc <= da
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCustomCurveConstant(t *testing.T) {
	b, err := New(1000, Config{CurveConstant: 93.6}) // doubles trip times
	if err != nil {
		t.Fatal(err)
	}
	d, _ := b.TimeToTrip(1600)
	if math.Abs(d.Seconds()-60) > 1e-9 {
		t.Errorf("custom curve: got %v, want 60s", d)
	}
}

// TestTimeToTripBoundaries pins the curve's edge behaviour: exactly at
// the hold threshold the breaker holds forever; just above it the trip
// time is finite but enormous (the curve's near-singular region); just
// below the instantaneous threshold the thermal curve still governs; at
// the threshold the magnetic element takes over.
func TestTimeToTripBoundaries(t *testing.T) {
	b := mustBreaker(t, 1000)
	cases := []struct {
		name    string
		load    power.Watts
		trips   bool
		minSec  float64 // bounds on the trip time when trips
		maxSec  float64
		instant bool
	}{
		{name: "exactly at hold", load: 1000, trips: false},
		{name: "hair above hold", load: 1000.1, trips: true,
			// K/(1.0001²−1) ≈ 234k s: finite, not overflowed, huge.
			minSec: 100_000, maxSec: 300_000},
		{name: "1 percent over", load: 1010, trips: true,
			// K/(1.01²−1) ≈ 2328 s.
			minSec: 2300, maxSec: 2400},
		{name: "just below instantaneous", load: 7999, trips: true,
			// K/(7.999²−1) ≈ 0.744 s: still thermal, not instant.
			minSec: 0.7, maxSec: 0.8},
		{name: "exactly instantaneous", load: 8000, trips: true, instant: true},
		{name: "beyond instantaneous", load: 20000, trips: true, instant: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, trips := b.TimeToTrip(tc.load)
			if trips != tc.trips {
				t.Fatalf("TimeToTrip(%v) trips = %v, want %v", tc.load, trips, tc.trips)
			}
			if !tc.trips {
				if d != 0 {
					t.Errorf("holding load reported duration %v", d)
				}
				return
			}
			if tc.instant {
				if d != 0 {
					t.Errorf("instantaneous load reported thermal delay %v", d)
				}
				return
			}
			if s := d.Seconds(); s < tc.minSec || s > tc.maxSec {
				t.Errorf("TimeToTrip(%v) = %v s, want [%v, %v]", tc.load, s, tc.minSec, tc.maxSec)
			}
		})
	}
}

// TestApplyExactlyAtHoldAccumulatesNothing: the hold threshold is
// inclusive — a breaker pinned exactly at rating gains no heat, and any
// prior heat decays.
func TestApplyExactlyAtHoldAccumulatesNothing(t *testing.T) {
	b := mustBreaker(t, 1000)
	for i := 0; i < 3600; i++ {
		b.Apply(1000, time.Second)
	}
	if b.Heat() != 0 {
		t.Fatalf("heat = %v after an hour at rating, want 0", b.Heat())
	}
	// Warm it up, then hold at exactly rating: heat must decay, never grow.
	b.Apply(1600, 10*time.Second)
	h := b.Heat()
	b.Apply(1000, 30*time.Second)
	if b.Heat() >= h {
		t.Errorf("heat %v did not decay at the hold threshold (was %v)", b.Heat(), h)
	}
}

// TestRiskSnapshot pins the SLO layer's view of the breaker across the
// cold, heated, instantaneous, and tripped regimes.
func TestRiskSnapshot(t *testing.T) {
	t.Run("cold regions", func(t *testing.T) {
		b := mustBreaker(t, 1000)
		cases := []struct {
			name       string
			load       power.Watts
			overloaded bool
			tttSec     float64
		}{
			{"light load", 500, false, 0},
			{"exactly rated", 1000, false, 0},
			{"ul489 datum", 1600, true, 30},
			{"instantaneous", 8000, true, 0},
		}
		for _, tc := range cases {
			rs := b.RiskSnapshot(tc.load)
			if rs.Risk != 0 || rs.Tripped {
				t.Errorf("%s: cold breaker risk = %v tripped = %v", tc.name, rs.Risk, rs.Tripped)
			}
			if rs.Overloaded != tc.overloaded {
				t.Errorf("%s: overloaded = %v, want %v", tc.name, rs.Overloaded, tc.overloaded)
			}
			if got := rs.TimeToTrip.Seconds(); math.Abs(got-tc.tttSec) > 1e-6 {
				t.Errorf("%s: timeToTrip = %v s, want %v", tc.name, got, tc.tttSec)
			}
			if rs.LoadFraction != float64(tc.load)/1000 {
				t.Errorf("%s: load fraction = %v", tc.name, rs.LoadFraction)
			}
		}
	})

	t.Run("heat shortens remaining trip time", func(t *testing.T) {
		b := mustBreaker(t, 1000)
		// 15 s at 160% deposits half the trip budget: K/2 = 23.4.
		b.Apply(1600, 15*time.Second)
		rs := b.RiskSnapshot(1600)
		if math.Abs(rs.Risk-0.5) > 1e-9 {
			t.Errorf("risk = %v, want 0.5 at half the thermal budget", rs.Risk)
		}
		if got := rs.TimeToTrip.Seconds(); math.Abs(got-15) > 1e-6 {
			t.Errorf("remaining timeToTrip = %v s, want 15 (half of 30)", got)
		}
		cold, _ := b.TimeToTrip(1600)
		if rs.TimeToTrip >= cold {
			t.Error("heated remaining time should be below the cold-start curve")
		}
	})

	t.Run("snapshot does not mutate state", func(t *testing.T) {
		b := mustBreaker(t, 1000)
		b.Apply(1600, 5*time.Second)
		h := b.Heat()
		b.RiskSnapshot(5000)
		b.RiskSnapshot(0)
		if b.Heat() != h || b.Tripped() {
			t.Error("RiskSnapshot mutated breaker state")
		}
	})

	t.Run("tripped pins risk at 1", func(t *testing.T) {
		b := mustBreaker(t, 1000)
		b.Apply(9000, time.Millisecond)
		rs := b.RiskSnapshot(0)
		if !rs.Tripped || rs.Risk != 1 {
			t.Errorf("tripped snapshot = %+v, want risk 1", rs)
		}
		if rs.TimeToTrip != 0 {
			t.Errorf("tripped breaker reported timeToTrip %v", rs.TimeToTrip)
		}
	})

	t.Run("risk saturates at 1 near trip", func(t *testing.T) {
		b := mustBreaker(t, 1000)
		// 29 of the 30 s budget: risk just under 1.
		b.Apply(1600, 29*time.Second)
		rs := b.RiskSnapshot(1600)
		if rs.Risk <= 0.9 || rs.Risk >= 1 {
			t.Errorf("risk = %v, want (0.9, 1) just before trip", rs.Risk)
		}
		if rs.TimeToTrip <= 0 || rs.TimeToTrip > 2*time.Second {
			t.Errorf("remaining = %v, want ≈1 s", rs.TimeToTrip)
		}
	})
}
