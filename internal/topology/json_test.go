package topology

import (
	"strings"
	"testing"
)

const sampleDoc = `{
  "feeds": [
    {
      "id": "A", "kind": "utility",
      "children": [
        {"id": "A-ups", "kind": "ups",
         "children": [
           {"id": "A-cdu1", "kind": "cdu", "rating_watts": 6900,
            "children": [
              {"id": "web1-psA", "kind": "supply", "server": "web1", "split": 0.5},
              {"id": "db1-psA", "kind": "supply", "server": "db1", "split": 0.65}
            ]}
         ]}
      ]
    },
    {
      "id": "B", "kind": "utility",
      "children": [
        {"id": "B-cdu1", "kind": "cdu", "rating_watts": 6900,
         "children": [
           {"id": "web1-psB", "kind": "supply", "server": "web1", "split": 0.5},
           {"id": "db1-psB", "kind": "supply", "server": "db1", "split": 0.35}
         ]}
      ]
    }
  ]
}`

func TestReadJSON(t *testing.T) {
	topo, err := ReadJSON(strings.NewReader(sampleDoc))
	if err != nil {
		t.Fatal(err)
	}
	if got := topo.Feeds(); len(got) != 2 || got[0] != "A" || got[1] != "B" {
		t.Errorf("feeds = %v", got)
	}
	if topo.Node("A-cdu1").Rating != 6900 {
		t.Errorf("CDU rating = %v", topo.Node("A-cdu1").Rating)
	}
	sup := topo.Node("db1-psA")
	if sup == nil || sup.Kind != KindSupply || sup.Split != 0.65 || sup.ServerID != "db1" {
		t.Errorf("supply = %+v", sup)
	}
	if sup.Feed != "A" {
		t.Errorf("supply feed = %q, want inherited A", sup.Feed)
	}
	// The parsed topology passes full validation, including split sums.
	if len(topo.SuppliesByServer()["db1"]) != 2 {
		t.Error("db1 supplies missing")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	topo, err := ReadJSON(strings.NewReader(sampleDoc))
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := topo.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	topo2, err := ReadJSON(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("round trip parse: %v\n%s", err, buf.String())
	}
	if topo2.NodeCount() != topo.NodeCount() {
		t.Errorf("node count %d -> %d", topo.NodeCount(), topo2.NodeCount())
	}
	for _, s := range topo.Supplies() {
		s2 := topo2.Node(s.ID)
		if s2 == nil || s2.Split != s.Split || s2.ServerID != s.ServerID {
			t.Errorf("supply %s mismatch after round trip", s.ID)
		}
	}
	for _, id := range []string{"A-cdu1", "B-cdu1"} {
		if topo2.Node(id).Rating != topo.Node(id).Rating {
			t.Errorf("rating mismatch for %s", id)
		}
	}
}

func TestReadJSONErrors(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"garbage", "{", "parse"},
		{"no feeds", `{"feeds": []}`, "no feeds"},
		{"unknown field", `{"feeds": [{"id":"A","kind":"utility","bogus":1}]}`, "parse"},
		{"unknown kind", `{"feeds": [{"id":"A","kind":"flux-capacitor"}]}`, "unknown kind"},
		{"supply with children", `{"feeds": [{"id":"A","kind":"utility","children":[
			{"id":"s","kind":"supply","server":"x","children":[{"id":"c","kind":"outlet"}]}]}]}`,
			"must not have children"},
		{"bad phase", `{"feeds": [{"id":"A","kind":"utility","phase":7}]}`, "phase"},
		{"invalid topology", `{"feeds": [{"id":"A","kind":"utility","children":[
			{"id":"s","kind":"supply","server":""}]}]}`, "server"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ReadJSON(strings.NewReader(c.doc))
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want containing %q", err, c.want)
			}
		})
	}
}

func TestReadJSONSupplyDefaultSplit(t *testing.T) {
	doc := `{"feeds": [{"id":"X","kind":"utility","children":[
		{"id":"s1","kind":"supply","server":"solo"}]}]}`
	topo, err := ReadJSON(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if got := topo.Node("s1").Split; got != 1 {
		t.Errorf("default split = %v, want 1", got)
	}
}

func TestParseKind(t *testing.T) {
	k, err := ParseKind(" CDU ")
	if err != nil || k != KindCDU {
		t.Errorf("ParseKind(CDU) = %v, %v", k, err)
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Error("unknown kind should fail")
	}
	for _, name := range []string{"utility", "ats", "ups", "transformer", "rpp", "cdu", "phase", "outlet", "supply", "virtual"} {
		if _, err := ParseKind(name); err != nil {
			t.Errorf("ParseKind(%s): %v", name, err)
		}
	}
}

func TestReadJSONPhases(t *testing.T) {
	doc := `{"feeds": [{"id":"X","kind":"utility","children":[
		{"id":"ph1","kind":"phase","phase":1,"rating_watts":5520,"children":[
			{"id":"s1","kind":"supply","server":"a"}]}]}]}`
	topo, err := ReadJSON(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if topo.Node("ph1").Phase != Phase1 {
		t.Errorf("phase = %v", topo.Node("ph1").Phase)
	}
	if topo.Node("s1").Phase != Phase1 {
		t.Errorf("supply phase not inherited: %v", topo.Node("s1").Phase)
	}
}
