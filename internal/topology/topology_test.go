package topology

import (
	"math"
	"strings"
	"testing"

	"capmaestro/internal/power"
)

// smallFeed builds feed -> CDU -> two supplies, one per server.
func smallFeed(feed FeedID) *Node {
	root := NewNode(string(feed)+"-root", KindUtility, 0)
	root.Feed = feed
	cdu := root.AddChild(NewNode(string(feed)+"-cdu", KindCDU, 6900))
	cdu.AddChild(NewSupply(string(feed)+"-s1", "server-1", 0.5))
	cdu.AddChild(NewSupply(string(feed)+"-s2", "server-2", 0.5))
	return root
}

func TestNewAndIndex(t *testing.T) {
	topo, err := New(smallFeed("A"), smallFeed("B"))
	if err != nil {
		t.Fatal(err)
	}
	if topo.NodeCount() != 8 {
		t.Errorf("node count = %d, want 8", topo.NodeCount())
	}
	if topo.Node("A-cdu") == nil || topo.Node("B-s2") == nil {
		t.Error("index missing nodes")
	}
	if topo.Node("nope") != nil {
		t.Error("unknown ID should return nil")
	}
	if got := topo.Feeds(); len(got) != 2 || got[0] != "A" || got[1] != "B" {
		t.Errorf("feeds = %v", got)
	}
	if topo.Root("B") == nil || topo.Root("C") != nil {
		t.Error("Root lookup wrong")
	}
}

func TestValidationErrors(t *testing.T) {
	cases := []struct {
		name  string
		build func() []*Node
		want  string
	}{
		{"nil root", func() []*Node { return []*Node{nil} }, "nil root"},
		{"no feed", func() []*Node {
			return []*Node{NewNode("r", KindUtility, 0)}
		}, "no feed"},
		{"duplicate ID", func() []*Node {
			r := smallFeed("A")
			r.AddChild(NewNode("A-cdu", KindCDU, 100))
			return []*Node{r}
		}, "duplicate"},
		{"empty ID", func() []*Node {
			r := smallFeed("A")
			r.AddChild(NewNode("", KindCDU, 100))
			return []*Node{r}
		}, "empty ID"},
		{"negative rating", func() []*Node {
			r := smallFeed("A")
			r.AddChild(NewNode("bad", KindCDU, -5))
			return []*Node{r}
		}, "negative rating"},
		{"supply with children", func() []*Node {
			r := smallFeed("A")
			s := r.Children()[0].Children()[0]
			s.AddChild(NewNode("x", KindOutlet, 0))
			return []*Node{r}
		}, "must be a leaf"},
		{"supply without server", func() []*Node {
			r := smallFeed("A")
			r.Children()[0].AddChild(NewSupply("s3", "", 0.5))
			return []*Node{r}
		}, "no server ID"},
		{"supply bad split", func() []*Node {
			r := smallFeed("A")
			r.Children()[0].AddChild(NewSupply("s3", "server-3", 1.5))
			return []*Node{r}
		}, "out of (0,1]"},
		{"splits exceed one", func() []*Node {
			r := smallFeed("A")
			r.Children()[0].AddChild(NewSupply("s3", "server-1", 0.7))
			return []*Node{r}
		}, "> 1"},
		{"splits do not cover server", func() []*Node {
			r := NewNode("r", KindUtility, 0)
			r.Feed = "A"
			r.AddChild(NewSupply("s1", "srv", 0.3))
			r.AddChild(NewSupply("s2", "srv", 0.3))
			return []*Node{r}
		}, "want ~1"},
		{"childless feed root", func() []*Node {
			r := NewNode("r", KindUtility, 0)
			r.Feed = "A"
			return []*Node{r}
		}, "no children"},
		{"duplicate ID across feeds", func() []*Node {
			a := smallFeed("A")
			b := smallFeed("B")
			b.AddChild(NewNode("A-cdu", KindCDU, 100))
			return []*Node{a, b}
		}, "duplicate"},
		{"feed mismatch", func() []*Node {
			r := smallFeed("A")
			rogue := NewNode("rogue", KindCDU, 100)
			rogue.Feed = "B"
			r.AddChild(rogue)
			return []*Node{r}
		}, "differs from root feed"},
		{"supply zero split", func() []*Node {
			r := smallFeed("A")
			r.Children()[0].AddChild(NewSupply("s3", "server-3", 0))
			return []*Node{r}
		}, "out of (0,1]"},
		{"supply negative split", func() []*Node {
			r := smallFeed("A")
			r.Children()[0].AddChild(NewSupply("s3", "server-3", -0.5))
			return []*Node{r}
		}, "out of (0,1]"},
		{"empty supply ID", func() []*Node {
			r := smallFeed("A")
			r.Children()[0].AddChild(NewSupply("", "server-3", 0.5))
			return []*Node{r}
		}, "empty ID"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := New(c.build()...)
			if err == nil {
				t.Fatalf("expected error containing %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestRootWithParentRejected(t *testing.T) {
	r := smallFeed("A")
	child := r.Children()[0]
	if _, err := New(child); err == nil {
		t.Error("non-root node should be rejected as root")
	}
}

func TestSingleSupplyServerAllowedPartialSplit(t *testing.T) {
	// A single-corded server with split 1.0, and a server whose redundant
	// supply is disconnected (split 1.0 on the surviving side only).
	r := NewNode("r", KindUtility, 0)
	r.Feed = "X"
	r.AddChild(NewSupply("s1", "solo", 1.0))
	if _, err := New(r); err != nil {
		t.Errorf("single-corded server rejected: %v", err)
	}
}

func TestFeedAndPhaseInheritance(t *testing.T) {
	root := NewNode("r", KindUtility, 0)
	root.Feed = "A"
	tx := root.AddChild(NewNode("tx", KindTransformer, 420000))
	ph := NewNode("ph1", KindPhaseBranch, 0)
	ph.Phase = Phase1
	tx.AddChild(ph)
	out := ph.AddChild(NewNode("o", KindOutlet, 0))
	if out.Feed != "A" {
		t.Errorf("feed not inherited: %q", out.Feed)
	}
	if out.Phase != Phase1 {
		t.Errorf("phase not inherited: %v", out.Phase)
	}
}

func TestPhaseConflictRejected(t *testing.T) {
	root := NewNode("r", KindUtility, 0)
	root.Feed = "A"
	ph := NewNode("ph1", KindPhaseBranch, 0)
	ph.Phase = Phase1
	root.AddChild(ph)
	bad := NewNode("bad", KindOutlet, 0)
	bad.Feed = "A"
	bad.Phase = Phase2
	ph.children = append(ph.children, bad) // bypass AddChild to force conflict
	bad.parent = ph
	if _, err := New(root); err == nil || !strings.Contains(err.Error(), "phase") {
		t.Errorf("expected phase conflict error, got %v", err)
	}
}

func TestWalkAndPrune(t *testing.T) {
	r := smallFeed("A")
	var visited []string
	r.Walk(func(n *Node) bool {
		visited = append(visited, n.ID)
		return n.Kind != KindCDU // prune below the CDU
	})
	if len(visited) != 2 {
		t.Errorf("visited %v, want root and cdu only", visited)
	}
}

func TestPath(t *testing.T) {
	topo := MustNew(smallFeed("A"))
	s := topo.Node("A-s1")
	path := s.Path()
	if len(path) != 3 || path[0].ID != "A-root" || path[2].ID != "A-s1" {
		ids := make([]string, len(path))
		for i, n := range path {
			ids[i] = n.ID
		}
		t.Errorf("path = %v", ids)
	}
}

func TestSuppliesSortedAndGrouped(t *testing.T) {
	topo := MustNew(smallFeed("B"), smallFeed("A"))
	sup := topo.Supplies()
	if len(sup) != 4 {
		t.Fatalf("supplies = %d, want 4", len(sup))
	}
	for i := 1; i < len(sup); i++ {
		if sup[i-1].ID > sup[i].ID {
			t.Error("supplies not sorted")
		}
	}
	byServer := topo.SuppliesByServer()
	if len(byServer["server-1"]) != 2 {
		t.Errorf("server-1 supplies = %d, want 2 (one per feed)", len(byServer["server-1"]))
	}
	ids := topo.ServerIDs()
	if len(ids) != 2 || ids[0] != "server-1" || ids[1] != "server-2" {
		t.Errorf("server IDs = %v", ids)
	}
}

func TestDeratingLimits(t *testing.T) {
	d := DefaultDerating()
	cdu := NewNode("cdu", KindCDU, 6900)
	if got := d.Limit(cdu); got != 5520 {
		t.Errorf("derated CDU limit = %v, want 5520 (80%%)", got)
	}
	virt := NewNode("budget", KindVirtual, 700000)
	if got := d.Limit(virt); got != 700000 {
		t.Errorf("virtual node limit = %v, want full 700000", got)
	}
	unlimited := NewNode("ats", KindATS, 0)
	if got := d.Limit(unlimited); !math.IsInf(float64(got), 1) {
		t.Errorf("unrated node limit = %v, want +Inf", got)
	}
}

func TestFullRating(t *testing.T) {
	d := FullRating()
	cdu := NewNode("cdu", KindCDU, 6900)
	if got := d.Limit(cdu); got != 6900 {
		t.Errorf("full-rating limit = %v, want 6900", got)
	}
}

func TestDeratingZeroFractionDefaultsToFull(t *testing.T) {
	d := Derating{Fraction: 0.8, Overrides: map[Kind]float64{KindCDU: 0}}
	cdu := NewNode("cdu", KindCDU, 1000)
	if got := d.Limit(cdu); got != 1000 {
		t.Errorf("zero override should mean full rating, got %v", got)
	}
}

func TestKindAndPhaseStrings(t *testing.T) {
	if KindRPP.String() != "rpp" || KindSupply.String() != "supply" {
		t.Error("kind names wrong")
	}
	if Kind(99).String() != "kind(99)" {
		t.Error("unknown kind formatting wrong")
	}
	if Phase1.String() != "L1" || PhaseAll.String() != "all" {
		t.Error("phase names wrong")
	}
	if Phase(9).String() != "phase(9)" {
		t.Error("unknown phase formatting wrong")
	}
	if len(Phases()) != 3 {
		t.Error("Phases() should list 3 phases")
	}
	var zero power.Watts
	_ = zero // keep the power import for the derating tests above
}
