// Package topology models the physical power-distribution infrastructure of
// a data center (Section 2.1, Figure 1 of the paper): utility feeds, ATSes,
// UPSes, transformers, remote power panels (RPPs), cabinet distribution
// units (CDUs), phase branches, and server power supplies, arranged as one
// tree per power feed. CapMaestro's control trees mirror this topology
// exactly, so the same structure drives both electrical simulation and
// budget allocation.
//
// Each node carries a power rating (the 100% point of its breaker or
// transformer). Conventional practice loads breakers to at most 80% of
// rating (NFPA 70); the package exposes that derating as an explicit
// Derating policy rather than baking it into ratings, so experiments can
// reason about normal-operation limits and failure-window limits
// separately.
package topology

import (
	"fmt"
	"math"
	"sort"

	"capmaestro/internal/power"
)

// FeedID identifies an independent power feed (side) of an N+N redundant
// infrastructure, e.g. "A"/"B" or the paper's "X"/"Y".
type FeedID string

// Phase identifies one phase of 3-phase power delivery. PhaseAll marks
// nodes that carry all phases (e.g. a transformer); specific phases are
// Phase1..Phase3.
type Phase int

// Phase values.
const (
	PhaseAll Phase = iota
	Phase1
	Phase2
	Phase3
)

// String returns a short label for the phase.
func (p Phase) String() string {
	switch p {
	case PhaseAll:
		return "all"
	case Phase1:
		return "L1"
	case Phase2:
		return "L2"
	case Phase3:
		return "L3"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

// Phases lists the three specific phases.
func Phases() []Phase { return []Phase{Phase1, Phase2, Phase3} }

// Kind classifies a node in the power distribution hierarchy.
type Kind int

// Node kinds, ordered roughly from the utility down to the server.
const (
	KindVirtual Kind = iota // grouping/contractual node with no physical device
	KindUtility
	KindATS
	KindUPS
	KindTransformer
	KindRPP
	KindCDU
	KindPhaseBranch
	KindOutlet
	KindSupply // leaf: a server power supply
)

var kindNames = map[Kind]string{
	KindVirtual:     "virtual",
	KindUtility:     "utility",
	KindATS:         "ats",
	KindUPS:         "ups",
	KindTransformer: "transformer",
	KindRPP:         "rpp",
	KindCDU:         "cdu",
	KindPhaseBranch: "phase",
	KindOutlet:      "outlet",
	KindSupply:      "supply",
}

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Node is one element of the power distribution tree. Build nodes with
// NewNode and link them with AddChild so parent pointers stay consistent.
type Node struct {
	ID     string
	Kind   Kind
	Rating power.Watts // 100% rating; 0 means no limit enforced here
	Feed   FeedID
	Phase  Phase

	// ServerID and Split are set only on KindSupply leaves: the server the
	// supply belongs to and the fraction r of that server's load this
	// supply carries (Section 4.3 uses r to scale per-supply metrics).
	ServerID string
	Split    float64

	children []*Node
	parent   *Node
}

// NewNode creates an unlinked node.
func NewNode(id string, kind Kind, rating power.Watts) *Node {
	return &Node{ID: id, Kind: kind, Rating: rating}
}

// NewSupply creates a power-supply leaf for the given server carrying the
// split fraction r of the server's load.
func NewSupply(id, serverID string, split float64) *Node {
	return &Node{ID: id, Kind: KindSupply, ServerID: serverID, Split: split}
}

// AddChild links child under n, inheriting n's feed (and phase, if the
// child has none) unless the child sets its own. It returns child to allow
// chaining during construction.
func (n *Node) AddChild(child *Node) *Node {
	if child.Feed == "" {
		child.Feed = n.Feed
	}
	if child.Phase == PhaseAll && n.Phase != PhaseAll {
		child.Phase = n.Phase
	}
	child.parent = n
	n.children = append(n.children, child)
	return child
}

// Children returns the node's children. The returned slice must not be
// mutated.
func (n *Node) Children() []*Node { return n.children }

// Parent returns the node's parent, or nil for a root.
func (n *Node) Parent() *Node { return n.parent }

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return len(n.children) == 0 }

// Walk visits n and all descendants in depth-first preorder. Returning
// false from fn prunes the subtree below the visited node.
func (n *Node) Walk(fn func(*Node) bool) {
	if !fn(n) {
		return
	}
	for _, c := range n.children {
		c.Walk(fn)
	}
}

// Path returns the nodes from the root down to n, inclusive.
func (n *Node) Path() []*Node {
	var rev []*Node
	for cur := n; cur != nil; cur = cur.parent {
		rev = append(rev, cur)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Derating maps a node to its enforceable power limit. The allocation
// algorithms treat the derated value as Plimit.
type Derating struct {
	// Fraction of rating usable during sustained operation; conventional
	// practice is 0.8 (Section 2.1).
	Fraction float64
	// Overrides supplies per-kind fractions, e.g. to exempt virtual
	// contractual nodes (fraction 1.0) from breaker derating.
	Overrides map[Kind]float64
}

// DefaultDerating is the conventional 80% loading rule for breakers and
// transformers; virtual (contractual) nodes already express enforceable
// budgets, so they are not derated further.
func DefaultDerating() Derating {
	return Derating{
		Fraction:  0.8,
		Overrides: map[Kind]float64{KindVirtual: 1.0},
	}
}

// FullRating uses 100% of each rating, for modelling the failure window in
// which breakers may legally be loaded beyond the sustained limit.
func FullRating() Derating { return Derating{Fraction: 1.0} }

// Limit returns the enforceable power limit for the node, or +Inf when the
// node has no rating.
func (d Derating) Limit(n *Node) power.Watts {
	if n.Rating <= 0 {
		return power.Watts(math.Inf(1))
	}
	frac := d.Fraction
	if f, ok := d.Overrides[n.Kind]; ok {
		frac = f
	}
	if frac <= 0 {
		frac = 1.0
	}
	return n.Rating * power.Watts(frac)
}

// Topology is a set of per-feed power distribution trees with an index of
// every node.
type Topology struct {
	roots []*Node
	byID  map[string]*Node
}

// New assembles and validates a topology from its per-feed root nodes.
func New(roots ...*Node) (*Topology, error) {
	t := &Topology{byID: make(map[string]*Node)}
	for _, r := range roots {
		if r == nil {
			return nil, fmt.Errorf("topology: nil root")
		}
		if r.parent != nil {
			return nil, fmt.Errorf("topology: root %q has a parent", r.ID)
		}
		t.roots = append(t.roots, r)
	}
	if err := t.validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// MustNew is New but panics on error; for static test fixtures.
func MustNew(roots ...*Node) *Topology {
	t, err := New(roots...)
	if err != nil {
		panic(err)
	}
	return t
}

func (t *Topology) validate() error {
	splitByServer := make(map[string]float64)
	suppliesByServer := make(map[string]int)
	for _, r := range t.roots {
		if r.Feed == "" {
			return fmt.Errorf("topology: root %q has no feed", r.ID)
		}
		if len(r.children) == 0 {
			return fmt.Errorf("topology: feed root %q has no children", r.ID)
		}
		var err error
		r.Walk(func(n *Node) bool {
			if err != nil {
				return false
			}
			if n.ID == "" {
				err = fmt.Errorf("topology: node with empty ID under root %q", r.ID)
				return false
			}
			if _, dup := t.byID[n.ID]; dup {
				err = fmt.Errorf("topology: duplicate node ID %q", n.ID)
				return false
			}
			t.byID[n.ID] = n
			if n.Rating < 0 {
				err = fmt.Errorf("topology: node %q has negative rating", n.ID)
				return false
			}
			if n.Feed != r.Feed {
				err = fmt.Errorf("topology: node %q feed %q differs from root feed %q", n.ID, n.Feed, r.Feed)
				return false
			}
			if p := n.parent; p != nil && p.Phase != PhaseAll && n.Phase != p.Phase {
				err = fmt.Errorf("topology: node %q phase %v conflicts with parent phase %v", n.ID, n.Phase, p.Phase)
				return false
			}
			if n.Kind == KindSupply {
				if !n.IsLeaf() {
					err = fmt.Errorf("topology: supply %q must be a leaf", n.ID)
					return false
				}
				if n.ServerID == "" {
					err = fmt.Errorf("topology: supply %q has no server ID", n.ID)
					return false
				}
				if n.Split <= 0 || n.Split > 1 {
					err = fmt.Errorf("topology: supply %q split %v out of (0,1]", n.ID, n.Split)
					return false
				}
				splitByServer[n.ServerID] += n.Split
				suppliesByServer[n.ServerID]++
			}
			return true
		})
		if err != nil {
			return err
		}
	}
	for server, sum := range splitByServer {
		if sum > 1+1e-9 {
			return fmt.Errorf("topology: server %q supply splits sum to %v > 1", server, sum)
		}
		if suppliesByServer[server] > 1 && math.Abs(sum-1) > 0.05 {
			return fmt.Errorf("topology: server %q splits sum to %v, want ~1 across working supplies", server, sum)
		}
	}
	return nil
}

// Roots returns the per-feed root nodes.
func (t *Topology) Roots() []*Node { return t.roots }

// Root returns the root for the given feed, or nil if absent.
func (t *Topology) Root(feed FeedID) *Node {
	for _, r := range t.roots {
		if r.Feed == feed {
			return r
		}
	}
	return nil
}

// Feeds lists the feed IDs in root order.
func (t *Topology) Feeds() []FeedID {
	feeds := make([]FeedID, 0, len(t.roots))
	for _, r := range t.roots {
		feeds = append(feeds, r.Feed)
	}
	return feeds
}

// Node returns the node with the given ID, or nil if absent.
func (t *Topology) Node(id string) *Node { return t.byID[id] }

// NodeCount reports the total number of nodes across all feeds.
func (t *Topology) NodeCount() int { return len(t.byID) }

// Supplies returns all power-supply leaves, sorted by node ID for
// determinism.
func (t *Topology) Supplies() []*Node {
	var out []*Node
	for _, r := range t.roots {
		r.Walk(func(n *Node) bool {
			if n.Kind == KindSupply {
				out = append(out, n)
			}
			return true
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// SuppliesByServer groups supply leaves by their server ID.
func (t *Topology) SuppliesByServer() map[string][]*Node {
	m := make(map[string][]*Node)
	for _, s := range t.Supplies() {
		m[s.ServerID] = append(m[s.ServerID], s)
	}
	return m
}

// ServerIDs returns the distinct server IDs in sorted order.
func (t *Topology) ServerIDs() []string {
	set := make(map[string]struct{})
	for _, s := range t.Supplies() {
		set[s.ServerID] = struct{}{}
	}
	ids := make([]string, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
