package topology

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"capmaestro/internal/power"
)

// The JSON format lets operators define a data center's wiring
// declaratively — the DCIM-style record that CapMaestro's control tree is
// built from and that topocheck validates against the live plant:
//
//	{
//	  "feeds": [
//	    {
//	      "id": "A", "feed": "A", "kind": "utility",
//	      "children": [
//	        {"id": "A-cdu1", "kind": "cdu", "rating_watts": 6900,
//	         "children": [
//	           {"id": "web1-psA", "kind": "supply", "server": "web1", "split": 0.5}
//	         ]}
//	      ]
//	    }
//	  ]
//	}

// nodeJSON is the serialized form of one node.
type nodeJSON struct {
	ID          string     `json:"id"`
	Kind        string     `json:"kind"`
	RatingWatts float64    `json:"rating_watts,omitempty"`
	Feed        string     `json:"feed,omitempty"`
	Phase       int        `json:"phase,omitempty"`
	Server      string     `json:"server,omitempty"`
	Split       float64    `json:"split,omitempty"`
	Children    []nodeJSON `json:"children,omitempty"`
}

// topologyJSON is the file-level document.
type topologyJSON struct {
	Feeds []nodeJSON `json:"feeds"`
}

var kindByName = func() map[string]Kind {
	m := make(map[string]Kind, len(kindNames))
	for k, name := range kindNames {
		m[name] = k
	}
	return m
}()

// ParseKind resolves a kind name ("cdu", "rpp", ...) used in topology
// files.
func ParseKind(name string) (Kind, error) {
	k, ok := kindByName[strings.ToLower(strings.TrimSpace(name))]
	if !ok {
		var known []string
		for _, n := range kindNames {
			known = append(known, n)
		}
		return 0, fmt.Errorf("topology: unknown kind %q (known: %s)", name, strings.Join(known, ", "))
	}
	return k, nil
}

// WriteJSON serializes the topology.
func (t *Topology) WriteJSON(w io.Writer) error {
	doc := topologyJSON{}
	for _, root := range t.roots {
		doc.Feeds = append(doc.Feeds, toNodeJSON(root))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

func toNodeJSON(n *Node) nodeJSON {
	out := nodeJSON{
		ID:          n.ID,
		Kind:        n.Kind.String(),
		RatingWatts: float64(n.Rating),
		Feed:        string(n.Feed),
		Phase:       int(n.Phase),
		Server:      n.ServerID,
		Split:       n.Split,
	}
	// Children inherit the feed; omit it below the root for brevity.
	for _, c := range n.Children() {
		cj := toNodeJSON(c)
		cj.Feed = ""
		out.Children = append(out.Children, cj)
	}
	return out
}

// ReadJSON parses and validates a topology document.
func ReadJSON(r io.Reader) (*Topology, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var doc topologyJSON
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("topology: parse: %w", err)
	}
	if len(doc.Feeds) == 0 {
		return nil, fmt.Errorf("topology: document has no feeds")
	}
	var roots []*Node
	for _, f := range doc.Feeds {
		if f.Feed == "" {
			// A root without an explicit feed names the feed after itself;
			// children inherit it during construction.
			f.Feed = f.ID
		}
		root, err := fromNodeJSON(f)
		if err != nil {
			return nil, err
		}
		// The tree is constructed bottom-up, so AddChild's feed/phase
		// inheritance ran before parents had theirs set; propagate both in
		// a preorder pass (parents are visited before their children).
		root.Walk(func(n *Node) bool {
			if p := n.Parent(); p != nil {
				if n.Feed == "" {
					n.Feed = p.Feed
				}
				if n.Phase == PhaseAll && p.Phase != PhaseAll {
					n.Phase = p.Phase
				}
			}
			return true
		})
		roots = append(roots, root)
	}
	return New(roots...)
}

func fromNodeJSON(j nodeJSON) (*Node, error) {
	kind, err := ParseKind(j.Kind)
	if err != nil {
		return nil, fmt.Errorf("node %q: %w", j.ID, err)
	}
	if j.Phase < 0 || j.Phase > 3 {
		return nil, fmt.Errorf("topology: node %q phase %d out of range", j.ID, j.Phase)
	}
	var n *Node
	if kind == KindSupply {
		if len(j.Children) > 0 {
			return nil, fmt.Errorf("topology: supply %q must not have children", j.ID)
		}
		split := j.Split
		if split == 0 {
			split = 1 // single-corded default
		}
		n = NewSupply(j.ID, j.Server, split)
	} else {
		n = NewNode(j.ID, kind, power.Watts(j.RatingWatts))
	}
	n.Feed = FeedID(j.Feed)
	n.Phase = Phase(j.Phase)
	for _, cj := range j.Children {
		c, err := fromNodeJSON(cj)
		if err != nil {
			return nil, err
		}
		n.AddChild(c)
	}
	return n, nil
}
