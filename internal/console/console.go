// Package console is the interactive operator mode behind `scenariorun
// interactive`: a mutex-guarded session wrapping a live simulator, a
// command language for day-2 operations (cordon/drain/uncordon a rack,
// retire a feed, re-prioritize a server, re-budget a feed or subtree),
// and an HTTP surface that serves the fleet's full observability plane —
// telemetry, flight recorder, SLO, and fleet digests — against the
// running simulation.
//
// Every command flows through the simulator's real control-plane path:
// a re-budget lands as an allocator input on the next control period, a
// drain moves measured load the capping controllers react to, and the
// refalloc oracle can be invoked at any point to prove the applied
// budgets are watt-exact for the mutated fleet.
package console

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"capmaestro/internal/core"
	"capmaestro/internal/fleetobs"
	"capmaestro/internal/flightrec"
	"capmaestro/internal/power"
	"capmaestro/internal/scenario"
	"capmaestro/internal/sim"
	"capmaestro/internal/slo"
	"capmaestro/internal/topology"
)

// ErrQuit is returned by Exec for the quit command; the caller owns the
// session lifecycle.
var ErrQuit = errors.New("console: quit")

// Session drives one simulator interactively. All methods are safe for
// concurrent use; the HTTP surface and a stdin command loop can share a
// session.
type Session struct {
	mu      sync.Mutex
	sim     *sim.Simulator
	tracker *slo.Tracker
	rec     *flightrec.Recorder

	// fleet observability synthesis (see fleet.go)
	hist       *fleetobs.History
	periods    uint64
	lastDigest fleetobs.Report
	haveDigest bool
}

// New wraps a built simulator in a session. tracker and rec may be nil.
func New(s *sim.Simulator, tracker *slo.Tracker, rec *flightrec.Recorder) *Session {
	sess := &Session{sim: s, tracker: tracker, rec: rec}
	sess.initFleet()
	return sess
}

// Sim exposes the wrapped simulator for tests. Callers must not mutate
// it concurrently with session use.
func (c *Session) Sim() *sim.Simulator { return c.sim }

// Step advances the simulation n seconds.
func (c *Session) Step(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.step(n)
}

func (c *Session) step(n int) {
	for i := 0; i < n; i++ {
		c.sim.Run(time.Second)
		c.sampleFleet()
	}
}

// Exec parses and executes one command line, returning its output.
func (c *Session) Exec(line string) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return "", nil
	}
	cmd, args := fields[0], fields[1:]
	arity := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("console: %s takes %d argument(s)", cmd, n)
		}
		return nil
	}
	switch cmd {
	case "help":
		return helpText, nil
	case "quit", "exit":
		return "", ErrQuit
	case "status":
		return c.statusText(), nil
	case "step":
		if err := arity(1); err != nil {
			return "", err
		}
		n, err := strconv.Atoi(args[0])
		if err != nil || n < 1 {
			return "", fmt.Errorf("console: step wants a positive second count, got %q", args[0])
		}
		c.step(n)
		return fmt.Sprintf("advanced %ds, t=%s", n, c.sim.Now()), nil
	case "cordon":
		if err := arity(1); err != nil {
			return "", err
		}
		if err := c.sim.Cordon(args[0]); err != nil {
			return "", err
		}
		return fmt.Sprintf("cordoned %s (%d servers cordoned fleet-wide)", args[0], len(c.sim.CordonedServers())), nil
	case "drain":
		if err := arity(1); err != nil {
			return "", err
		}
		if err := c.sim.Drain(args[0]); err != nil {
			return "", err
		}
		return fmt.Sprintf("drained %s (%d servers drained fleet-wide)", args[0], len(c.sim.DrainedServers())), nil
	case "uncordon":
		if err := arity(1); err != nil {
			return "", err
		}
		if err := c.sim.Uncordon(args[0]); err != nil {
			return "", err
		}
		return fmt.Sprintf("uncordoned %s", args[0]), nil
	case "retire-feed":
		if err := arity(1); err != nil {
			return "", err
		}
		feed, err := c.feedArg(args[0])
		if err != nil {
			return "", err
		}
		c.sim.FailFeed(feed)
		return fmt.Sprintf("retired feed %s", feed), nil
	case "restore-feed":
		if err := arity(1); err != nil {
			return "", err
		}
		feed, err := c.feedArg(args[0])
		if err != nil {
			return "", err
		}
		c.sim.RestoreFeed(feed)
		return fmt.Sprintf("restored feed %s", feed), nil
	case "priority":
		if err := arity(2); err != nil {
			return "", err
		}
		p, err := strconv.Atoi(args[1])
		if err != nil || p < 0 {
			return "", fmt.Errorf("console: priority wants a non-negative integer, got %q", args[1])
		}
		if err := c.sim.SetPriority(args[0], core.Priority(p)); err != nil {
			return "", err
		}
		return fmt.Sprintf("server %s priority → %d", args[0], p), nil
	case "util":
		if err := arity(2); err != nil {
			return "", err
		}
		u, err := strconv.ParseFloat(args[1], 64)
		if err != nil || u < 0 || u > 1 {
			return "", fmt.Errorf("console: util wants a fraction in [0,1], got %q", args[1])
		}
		if err := c.sim.SetUtilization(args[0], u); err != nil {
			return "", err
		}
		return fmt.Sprintf("server %s utilization → %.2f", args[0], u), nil
	case "budget":
		if err := arity(2); err != nil {
			return "", err
		}
		w, err := strconv.ParseFloat(args[1], 64)
		if err != nil || w < 0 {
			return "", fmt.Errorf("console: budget wants non-negative watts, got %q", args[1])
		}
		return c.setBudget(args[0], power.Watts(w))
	case "oracle":
		if err := scenario.CheckOracle(c.sim); err != nil {
			return "", fmt.Errorf("console: oracle diverged: %w", err)
		}
		return "applied budgets are watt-exact against the refalloc oracle", nil
	default:
		return "", fmt.Errorf("console: unknown command %q (try help)", cmd)
	}
}

const helpText = `commands:
  status                     fleet state: time, feeds, operator flags, SLO
  step <sec>                 advance the simulation
  cordon <node>              close servers under a node to new work
  drain <node>               migrate load off cordoned servers under a node
  uncordon <node>            restore drained load and reopen servers
  retire-feed <X|Y>          take a utility feed out of service
  restore-feed <X|Y>         bring a retired feed back
  priority <server> <p>      change a server's priority
  util <server> <0..1>       change a server's utilization
  budget <feed|node> <watts> re-budget a feed (contractual) or subtree
                             (operator overlay; 0 clears the overlay)
  oracle                     verify applied budgets against refalloc
  quit                       end the session`

// feedArg resolves a feed name against the topology.
func (c *Session) feedArg(name string) (topology.FeedID, error) {
	for _, root := range c.sim.Topology().Roots() {
		if string(root.Feed) == name {
			return root.Feed, nil
		}
	}
	return "", fmt.Errorf("console: unknown feed %q", name)
}

// setBudget routes a budget command: a feed name re-budgets the
// contractual root budget; anything else is a subtree overlay on a
// distribution node.
func (c *Session) setBudget(target string, w power.Watts) (string, error) {
	if feed, err := c.feedArg(target); err == nil {
		c.sim.SetRootBudget(feed, w)
		return fmt.Sprintf("feed %s contractual budget → %.0f W", feed, float64(w)), nil
	}
	if err := c.sim.SetNodeBudget(target, w); err != nil {
		return "", err
	}
	if w == 0 {
		return fmt.Sprintf("node %s budget overlay cleared", target), nil
	}
	return fmt.Sprintf("node %s budget overlay → %.0f W", target, float64(w)), nil
}

// Status is the machine-readable session state served on /op/status.
type Status struct {
	TimeSec float64      `json:"time_sec"`
	Feeds   []FeedStatus `json:"feeds"`

	Cordoned    []string           `json:"cordoned,omitempty"`
	Drained     []string           `json:"drained,omitempty"`
	NodeBudgets map[string]float64 `json:"node_budgets,omitempty"`

	TrippedBreakers     []string `json:"tripped_breakers,omitempty"`
	InfeasiblePeriods   int      `json:"infeasible_periods"`
	InvariantViolations int      `json:"invariant_violations"`

	WindowsClosed uint64      `json:"slo_windows_closed"`
	OpenWindow    *slo.Window `json:"slo_open_window,omitempty"`
	PeakRisk      float64     `json:"slo_peak_risk"`
}

// FeedStatus is one utility feed's state.
type FeedStatus struct {
	Feed   string  `json:"feed"`
	Failed bool    `json:"failed"`
	Budget float64 `json:"budget_watts,omitempty"`
	Load   float64 `json:"load_watts"`
}

// Status snapshots the session.
func (c *Session) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.status()
}

func (c *Session) status() Status {
	s := c.sim
	st := Status{
		TimeSec:             s.Now().Seconds(),
		Cordoned:            s.CordonedServers(),
		Drained:             s.DrainedServers(),
		TrippedBreakers:     s.TrippedBreakers(),
		InfeasiblePeriods:   s.InfeasiblePeriods(),
		InvariantViolations: len(s.InvariantViolations()),
		WindowsClosed:       c.tracker.WindowsClosed(),
		OpenWindow:          c.tracker.OpenWindow(),
		PeakRisk:            c.tracker.PeakRisk(),
	}
	if ov := s.NodeBudgetOverlays(); len(ov) > 0 {
		st.NodeBudgets = make(map[string]float64, len(ov))
		for id, b := range ov {
			st.NodeBudgets[id] = float64(b)
		}
	}
	roots := s.Topology().Roots()
	sort.Slice(roots, func(i, j int) bool { return roots[i].Feed < roots[j].Feed })
	for _, root := range roots {
		st.Feeds = append(st.Feeds, FeedStatus{
			Feed:   string(root.Feed),
			Failed: s.FeedFailed(root.Feed),
			Budget: float64(s.RootBudget(root.Feed)),
			Load:   float64(s.NodeLoad(root.ID)),
		})
	}
	return st
}

// statusText renders the status for terminal use.
func (c *Session) statusText() string {
	st := c.status()
	var b strings.Builder
	fmt.Fprintf(&b, "t=%.0fs", st.TimeSec)
	for _, f := range st.Feeds {
		state := "up"
		if f.Failed {
			state = "RETIRED"
		}
		fmt.Fprintf(&b, "  feed %s: %s load=%.0fW", f.Feed, state, f.Load)
		if f.Budget > 0 {
			fmt.Fprintf(&b, " budget=%.0fW", f.Budget)
		}
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "cordoned=%d drained=%d overlays=%d tripped=%d infeasible=%d violations=%d\n",
		len(st.Cordoned), len(st.Drained), len(st.NodeBudgets),
		len(st.TrippedBreakers), st.InfeasiblePeriods, st.InvariantViolations)
	fmt.Fprintf(&b, "slo: windows_closed=%d peak_risk=%.3f", st.WindowsClosed, st.PeakRisk)
	if st.OpenWindow != nil {
		fmt.Fprintf(&b, " OPEN window since t=%.0fs (%s)", st.OpenWindow.OpenedSec, strings.Join(st.OpenWindow.Causes, ","))
	}
	return b.String()
}
