package console

import (
	"time"

	"capmaestro/internal/fleetobs"
	"capmaestro/internal/topology"
)

// The interactive session synthesizes the fleet observability plane the
// sharded control plane produces in production: one StatDigest per rack
// (CDU position per feed), merged into a fleet rollup and appended to
// the /debug/fleet/history ring once per control period. The digests are
// derived from the simulator's measured node loads and the last applied
// allocation, so /debug/fleet shows the same cap-violation pressure and
// headroom distribution an operator would see on a real room.

func (c *Session) initFleet() {
	c.hist = fleetobs.NewHistory(fleetobs.DefaultHistorySize)
}

// sampleFleet refreshes the synthesized fleet digest on control-period
// boundaries. Callers hold c.mu.
func (c *Session) sampleFleet() {
	periodSec := int(c.sim.ControlPeriod().Seconds())
	if periodSec <= 0 {
		return
	}
	nowSec := int(c.sim.Now().Seconds())
	if nowSec == 0 || nowSec%periodSec != 0 {
		return
	}
	c.periods++

	fleet := &fleetobs.StatDigest{}
	for _, root := range c.sim.Topology().Roots() {
		if c.sim.FeedFailed(root.Feed) {
			continue
		}
		alloc := c.sim.LastAllocation(root.Feed)
		root.Walk(func(n *topology.Node) bool {
			if n.Kind != topology.KindCDU {
				return true
			}
			d := &fleetobs.StatDigest{Racks: 1}
			d.PowerW = float64(c.sim.NodeLoad(n.ID))
			d.RequestW = d.PowerW
			if alloc != nil {
				d.BudgetW = float64(alloc.NodeBudgets[n.ID])
			}
			if d.BudgetW > 0 {
				d.HeadroomW = d.BudgetW - d.PowerW
				d.WorstHeadroomW = d.HeadroomW
				d.WorstHeadroomRack = n.ID
				if d.PowerW > 0 {
					d.Headroom.Observe(fleetobs.HeadroomBounds, d.HeadroomW/d.PowerW)
				}
				if d.PowerW > d.BudgetW {
					d.ViolatingRacks = 1
					d.ViolationW = d.PowerW - d.BudgetW
					d.AddOutlier(fleetobs.Outlier{
						Rack:      n.ID,
						Score:     d.ViolationW,
						Reason:    "cap-violation",
						PowerW:    d.PowerW,
						HeadroomW: d.HeadroomW,
					})
				}
			}
			fleet.Merge(d)
			return true
		})
	}

	c.lastDigest = fleetobs.Report{
		Period:  c.periods,
		Time:    time.Now(),
		Summary: fleet.Summary(),
		Fleet:   fleet,
	}
	c.haveDigest = true

	sum := c.lastDigest.Summary
	c.hist.Append(fleetobs.Sample{
		Period:         c.periods,
		UnixMs:         c.lastDigest.Time.UnixMilli(),
		PowerW:         sum.PowerWatts,
		BudgetW:        sum.BudgetWatts,
		HeadroomW:      sum.HeadroomWatts,
		WorstHeadroomW: sum.WorstHeadroomWatts,
		ViolatingRacks: sum.ViolatingRacks,
		OutlierRacks:   sum.OutlierRacks,
	})
}

// fleetReport snapshots the latest synthesized digest for the HTTP
// handler.
func (c *Session) fleetReport() (fleetobs.Report, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastDigest, c.haveDigest
}
