package console_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"capmaestro/internal/console"
	"capmaestro/internal/fleetobs"
	"capmaestro/internal/flightrec"
	"capmaestro/internal/scenario"
	"capmaestro/internal/slo"
	"capmaestro/internal/telemetry"
)

// newSession builds a live dual-feed fleet (two racks, four servers
// each) wrapped in an operator session with the full instrument stack.
func newSession(t *testing.T) (*console.Session, *telemetry.Registry) {
	t.Helper()
	f := &scenario.File{
		Name: "console-" + t.Name(),
		Fleet: scenario.FleetSpec{
			Policy:      "global",
			DurationSec: 600,
			Topology: scenario.TopologySpec{RPPs: []scenario.RPPSpec{{
				XRating: 12000, YRating: 12000,
				Racks: []scenario.RackSpec{
					{XRating: 2400, YRating: 2400},
					{XRating: 2400, YRating: 2400},
				},
			}}},
			Groups: []scenario.ServerGroup{
				{Prefix: "a", Count: 4, RPP: 0, Rack: 0, Priority: 1, XShare: 0.5, Utilization: 0.7},
				{Prefix: "b", Count: 4, RPP: 0, Rack: 1, Priority: 2, XShare: 0.5, Utilization: 0.6},
			},
		},
		Assertions: []scenario.Assertion{{Kind: scenario.AssertNoTrips}},
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	sc, err := f.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	rec := flightrec.NewRecorder(flightrec.DefaultBufferSize)
	tracker, err := slo.New(slo.Config{Recorder: rec, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sc.BuildSimInstrumented(scenario.SimInstruments{
		SLO: tracker, FlightRecorder: rec, Telemetry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return console.New(s, tracker, rec), reg
}

func exec(t *testing.T, sess *console.Session, line string) string {
	t.Helper()
	out, err := sess.Exec(line)
	if err != nil {
		t.Fatalf("Exec(%q): %v", line, err)
	}
	return out
}

// TestScriptedCordonRebudgetSettlesWattExact is the acceptance check for
// interactive mode: a scripted session cordons and drains a rack,
// overlays a subtree budget, re-budgets a feed, steps through control
// periods, and at each settle point the oracle command must certify the
// applied budgets watt-identical to the refalloc reference.
func TestScriptedCordonRebudgetSettlesWattExact(t *testing.T) {
	sess, _ := newSession(t)
	const oracleOK = "applied budgets are watt-exact against the refalloc oracle"

	script := []string{
		"step 16", // two control periods of steady state
		"oracle",
		"cordon X-rpp0-cdu0",
		"drain X-rpp0-cdu0",
		"budget X-rpp0-cdu1 900", // subtree overlay on the other rack
		"budget X 2600",          // contractual feed re-budget
		"step 8",                 // one control period under the new constraints
		"oracle",
		"uncordon X-rpp0-cdu0",
		"budget X-rpp0-cdu1 0", // clear the overlay
		"step 8",
		"oracle",
	}
	for _, line := range script {
		out, err := sess.Exec(line)
		if err != nil {
			t.Fatalf("Exec(%q): %v", line, err)
		}
		if line == "oracle" && out != oracleOK {
			t.Fatalf("oracle output = %q", out)
		}
	}

	s := sess.Sim()
	if tripped := s.TrippedBreakers(); len(tripped) != 0 {
		t.Fatalf("breakers tripped: %v", tripped)
	}
	if v := s.InvariantViolations(); len(v) != 0 {
		t.Fatalf("invariant violations: %v", v)
	}
	// The session's mutations really landed on the control plane: the
	// feed's contractual budget bounds the last X allocation.
	alloc := s.LastAllocation("X")
	if alloc == nil {
		t.Fatal("no allocation on X")
	}
	if got := float64(alloc.NodeBudgets["X"]); got > 2600 {
		t.Fatalf("X root budget %v W exceeds the 2600 W contract", got)
	}
}

// TestExecErrors pins the console's error surface.
func TestExecErrors(t *testing.T) {
	sess, _ := newSession(t)
	cases := []struct {
		line, wantErr string
	}{
		{"bogus", `console: unknown command "bogus" (try help)`},
		{"cordon", "console: cordon takes 1 argument(s)"},
		{"step zero", `console: step wants a positive second count, got "zero"`},
		{"retire-feed Z", `console: unknown feed "Z"`},
		{"util a-0 2", `console: util wants a fraction in [0,1], got "2"`},
		{"priority a-0 -1", `console: priority wants a non-negative integer, got "-1"`},
		{"drain X-rpp0-cdu0", `sim: drain "X-rpp0-cdu0": server "a-0" is not cordoned`},
	}
	for _, tc := range cases {
		_, err := sess.Exec(tc.line)
		if err == nil || err.Error() != tc.wantErr {
			t.Fatalf("Exec(%q): err = %v, want %q", tc.line, err, tc.wantErr)
		}
	}
	if _, err := sess.Exec("quit"); err != console.ErrQuit {
		t.Fatalf("quit returned %v", err)
	}
	if out, err := sess.Exec("   "); err != nil || out != "" {
		t.Fatalf("blank line: %q, %v", out, err)
	}
	if out := exec(t, sess, "help"); !strings.Contains(out, "retire-feed") {
		t.Fatalf("help output missing commands:\n%s", out)
	}
}

// TestOperatorHTTPSurface drives the mounted HTTP plane end to end:
// operator commands over POST /op, machine status, and the telemetry,
// SLO, flight-recorder, and fleet endpoints all serve against the live
// sim.
func TestOperatorHTTPSurface(t *testing.T) {
	sess, reg := newSession(t)
	ts, err := telemetry.Serve(reg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	sess.Mount(ts)
	base := "http://" + ts.Addr()

	post := func(cmd string) (int, console.Status, string) {
		t.Helper()
		body := strings.NewReader(fmt.Sprintf(`{"cmd":%q}`, cmd))
		resp, err := http.Post(base+"/op", "application/json", body)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var or struct {
			Output string `json:"output"`
			Error  string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&or); err != nil {
			t.Fatal(err)
		}
		if or.Error != "" {
			return resp.StatusCode, console.Status{}, or.Error
		}
		return resp.StatusCode, console.Status{}, or.Output
	}

	if code, _, out := post("step 16"); code != http.StatusOK || !strings.Contains(out, "advanced 16s") {
		t.Fatalf("step over HTTP: %d %q", code, out)
	}
	if code, _, out := post("cordon X-rpp0-cdu0"); code != http.StatusOK || !strings.Contains(out, "cordoned") {
		t.Fatalf("cordon over HTTP: %d %q", code, out)
	}
	if code, _, out := post("oracle"); code != http.StatusOK || !strings.Contains(out, "watt-exact") {
		t.Fatalf("oracle over HTTP: %d %q", code, out)
	}
	if code, _, msg := post("drain Y"); code != http.StatusBadRequest || !strings.Contains(msg, "not cordoned") {
		t.Fatalf("bad drain over HTTP: %d %q", code, msg)
	}
	if code, _, msg := post("quit"); code != http.StatusBadRequest || !strings.Contains(msg, "terminal command") {
		t.Fatalf("quit over HTTP: %d %q", code, msg)
	}

	// GET /op must be refused.
	resp, err := http.Get(base + "/op")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /op = %d", resp.StatusCode)
	}

	// Machine status reflects the cordon issued above.
	resp, err = http.Get(base + "/op/status")
	if err != nil {
		t.Fatal(err)
	}
	var st console.Status
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.TimeSec != 16 || len(st.Cordoned) != 4 {
		t.Fatalf("status = t%vs cordoned=%v", st.TimeSec, st.Cordoned)
	}
	if len(st.Feeds) != 2 || st.Feeds[0].Feed != "X" || st.Feeds[0].Load <= 0 {
		t.Fatalf("feeds = %+v", st.Feeds)
	}

	// The observability plane is mounted and serving.
	for _, path := range []string{"/metrics", "/debug/slo", "/debug/periods", "/debug/fleet", "/debug/fleet/history"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", path, resp.StatusCode)
		}
	}

	// The fleet digest is synthesized per control period from the live
	// allocation: one digest per rack-feed side (2 racks × 2 feeds)
	// rolled up, with real watts behind them.
	resp, err = http.Get(base + "/debug/fleet")
	if err != nil {
		t.Fatal(err)
	}
	var fleet fleetobs.Report
	err = json.NewDecoder(resp.Body).Decode(&fleet)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if fleet.Fleet == nil || fleet.Fleet.Racks != 4 {
		t.Fatalf("fleet digest = %+v", fleet.Fleet)
	}
	if fleet.Fleet.PowerW <= 0 || fleet.Fleet.BudgetW <= 0 {
		t.Fatalf("fleet digest has no watts: power=%v budget=%v", fleet.Fleet.PowerW, fleet.Fleet.BudgetW)
	}
	if fleet.Period == 0 {
		t.Fatalf("fleet digest period = 0")
	}
}

// TestRunLoop drives the line-oriented console front end with a scripted
// stdin and checks the transcript.
func TestRunLoop(t *testing.T) {
	sess, _ := newSession(t)
	in := strings.NewReader("status\nstep 8\noracle\nquit\n")
	var out strings.Builder
	if err := sess.Run(in, &out, 0, nil); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"capmaestro operator console",
		"advanced 8s",
		"watt-exact",
		"bye",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("transcript missing %q:\n%s", want, text)
		}
	}
}
