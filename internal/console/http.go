package console

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"capmaestro/internal/fleetobs"
	"capmaestro/internal/telemetry"
)

// Mount attaches the session's full surface to a telemetry server:
//
//	POST /op              — execute one operator command
//	GET  /op/status       — machine-readable session state
//	GET  /debug/periods   — flight-recorder ring (and /debug/trace.json)
//	GET  /debug/slo       — exposure windows, trip risk, alert state
//	GET  /debug/fleet     — synthesized fleet digest (+ /history)
//
// plus the registry's own /metrics, /healthz, and /debug/vars the server
// carries already.
func (c *Session) Mount(ts *telemetry.Server) {
	ts.Handle("/op", http.HandlerFunc(c.serveOp))
	ts.Handle("/op/status", http.HandlerFunc(c.serveStatus))
	if c.rec != nil {
		h := c.rec.Handler()
		ts.Handle("/debug/periods", h)
		ts.Handle("/debug/periods/", h)
		ts.Handle("/debug/trace.json", h)
	}
	if c.tracker != nil {
		ts.Handle("/debug/slo", c.tracker.Handler())
		ts.AddLeveledCheck("slo", c.tracker.HealthCheck)
	}
	fh := fleetobs.Handler(c.fleetReport, c.hist)
	ts.Handle("/debug/fleet", fh)
	ts.Handle("/debug/fleet/", fh)
}

// opRequest is the POST /op body.
type opRequest struct {
	Cmd string `json:"cmd"`
}

// opResponse is the POST /op reply.
type opResponse struct {
	Output string `json:"output,omitempty"`
	Error  string `json:"error,omitempty"`
}

func (c *Session) serveOp(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var or opRequest
	if err := json.NewDecoder(io.LimitReader(req.Body, 1<<16)).Decode(&or); err != nil {
		writeJSON(w, http.StatusBadRequest, opResponse{Error: fmt.Sprintf("bad request: %v", err)})
		return
	}
	out, err := c.Exec(or.Cmd)
	switch {
	case errors.Is(err, ErrQuit):
		writeJSON(w, http.StatusBadRequest, opResponse{Error: "quit is a terminal command; stop the process instead"})
	case err != nil:
		writeJSON(w, http.StatusBadRequest, opResponse{Error: err.Error()})
	default:
		writeJSON(w, http.StatusOK, opResponse{Output: out})
	}
}

func (c *Session) serveStatus(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, http.StatusOK, c.Status())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// Run drives the session from a line-oriented command stream (stdin in
// interactive mode), advancing the simulation rate simulated seconds per
// wall second via the caller's clock channel. Each tick received on
// clock advances the sim; a nil clock disables real-time advance (the
// step command still works). Run returns on quit or end of input.
func (c *Session) Run(in io.Reader, out io.Writer, rate int, clock <-chan struct{}) error {
	lines := make(chan string)
	errc := make(chan error, 1)
	go func() {
		sc := bufio.NewScanner(in)
		for sc.Scan() {
			lines <- sc.Text()
		}
		errc <- sc.Err()
		close(lines)
	}()
	fmt.Fprintln(out, "capmaestro operator console — type help for commands")
	prompt := func() { fmt.Fprint(out, "> ") }
	prompt()
	for {
		select {
		case <-clock:
			if rate > 0 {
				c.Step(rate)
			}
		case line, ok := <-lines:
			if !ok {
				return <-errc
			}
			res, err := c.Exec(line)
			switch {
			case errors.Is(err, ErrQuit):
				fmt.Fprintln(out, "bye")
				return nil
			case err != nil:
				fmt.Fprintf(out, "error: %v\n", err)
			case res != "":
				fmt.Fprintln(out, res)
			}
			prompt()
		}
	}
}
