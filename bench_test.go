// Benchmarks regenerating every table and figure of the paper's evaluation
// (go test -bench=. -benchmem), plus ablations of the design choices
// called out in DESIGN.md. Each benchmark measures the cost of one full
// regeneration at reduced Monte Carlo fidelity; custom metrics report the
// headline quantity the experiment produces so `-bench` output doubles as
// a results summary.
package capmaestro_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"capmaestro"
	"capmaestro/internal/capping"
	"capmaestro/internal/core"
	"capmaestro/internal/dc"
	"capmaestro/internal/experiments"
	"capmaestro/internal/power"
	"capmaestro/internal/server"
	"capmaestro/internal/workload"
)

// benchOpts keeps bench iterations affordable; EXPERIMENTS.md records the
// full-fidelity numbers.
var benchOpts = experiments.Options{Fast: true, TypicalRuns: 26, WorstCaseRuns: 3}

func runExperiment(b *testing.B, id string) *experiments.Result {
	b.Helper()
	e, ok := experiments.Find(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	var res *experiments.Result
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = e.Run(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
	}
	return res
}

// BenchmarkTable1 regenerates the local-vs-global conceptual comparison.
func BenchmarkTable1(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkFigure5 regenerates the per-supply cap enforcement trace: 200
// simulated seconds of per-second sensing and 8 s PI iterations.
func BenchmarkFigure5(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkTable2 regenerates the three-policy test-bed comparison (three
// full 2-minute simulations).
func BenchmarkTable2(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkFigure6b regenerates the circuit-breaker power traces under
// Global Priority.
func BenchmarkFigure6b(b *testing.B) { runExperiment(b, "fig6b") }

// BenchmarkTable3 regenerates the stranded-power study (two 3-minute
// dual-feed simulations, with and without SPO).
func BenchmarkTable3(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkFigure7c regenerates the Y-feed power traces.
func BenchmarkFigure7c(b *testing.B) { runExperiment(b, "fig7c") }

// BenchmarkFigure8 regenerates the utilization distribution and measures
// sampling throughput.
func BenchmarkFigure8(b *testing.B) {
	d := workload.Figure8Distribution()
	rng := rand.New(rand.NewSource(1))
	var sum float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum += d.Sample(rng)
	}
	if sum < 0 {
		b.Fatal("impossible")
	}
}

// BenchmarkFigure9 regenerates the deployable-server capacity bars.
func BenchmarkFigure9(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFigure10 regenerates the worst-case cap-ratio curves.
func BenchmarkFigure10(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkSensitivityPriorityFraction regenerates the high-priority
// fraction sensitivity study.
func BenchmarkSensitivityPriorityFraction(b *testing.B) { runExperiment(b, "sens-priority") }

// BenchmarkSensitivityCapMin regenerates the Pcap_min sensitivity study.
func BenchmarkSensitivityCapMin(b *testing.B) { runExperiment(b, "sens-capmin") }

// BenchmarkSensitivityContractualBudget regenerates the contractual budget
// sensitivity study.
func BenchmarkSensitivityContractualBudget(b *testing.B) { runExperiment(b, "sens-budget") }

// BenchmarkAllocation measures one metrics-gathering + budgeting round at
// data-center scale: the per-control-period cost of the core algorithm.
// The reusable variant drives the study path (a full Monte Carlo run over
// the prebuilt per-phase Allocators — the hot loop of the capacity study);
// the oneshot variant re-runs the map-building core.Allocate convenience
// API on the same trees, showing what every control period would pay
// without the reusable engine.
func BenchmarkAllocation(b *testing.B) {
	for _, servers := range []int{486, 1944, 5832} {
		cfg := dc.DefaultConfig()
		cfg.ServersPerRack = servers / cfg.Racks()
		b.Run(fmt.Sprintf("servers=%d/reusable", servers), func(b *testing.B) {
			built, err := dc.Build(cfg, dc.WorstCase)
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(1))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := built.Run(rng, core.GlobalPriority, 1.0); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("servers=%d/oneshot", servers), func(b *testing.B) {
			built, err := dc.Build(cfg, dc.WorstCase)
			if err != nil {
				b.Fatal(err)
			}
			phases := built.Phases()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, root := range phases {
					if _, err := core.Allocate(root, 0, core.GlobalPriority); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkAblationErrorMode compares the paper's min-error capping
// controller against an averaging ablation. The custom metric reports the
// worst overshoot of the tight supply's 180 W budget: near zero for
// min-error, tens of watts for averaging — the reason Figure 4 selects the
// minimum.
func BenchmarkAblationErrorMode(b *testing.B) {
	for _, mode := range []capping.ErrorMode{capping.ErrorModeMin, capping.ErrorModeAverage} {
		name := "min"
		if mode == capping.ErrorModeAverage {
			name = "average"
		}
		b.Run(name, func(b *testing.B) {
			var overshoot float64
			for i := 0; i < b.N; i++ {
				srv := server.MustNew(server.Config{
					ID:    "s1",
					Model: power.DefaultServerModel(),
					Supplies: []server.Supply{
						{ID: "psA", Split: 0.5},
						{ID: "psB", Split: 0.5},
					},
				})
				srv.SetUtilization(1)
				ctl := capping.MustNew(srv, capping.Config{Errors: mode})
				ctl.SetBudget("psA", 400)
				ctl.SetBudget("psB", 180)
				for p := 0; p < 10; p++ {
					for s := 0; s < 8; s++ {
						srv.Step(time.Second)
						ctl.Sense()
					}
					ctl.Iterate()
				}
				if pb, _ := srv.SupplyACPower("psB"); float64(pb)-180 > overshoot {
					overshoot = float64(pb) - 180
				}
			}
			b.ReportMetric(overshoot, "overshoot-W")
		})
	}
}

// BenchmarkAblationSummaryScaling shows why shifting controllers exchange
// priority-grouped summaries instead of per-server metrics: the root's
// budgeting work stays O(children × priorities) no matter how many servers
// sit below each child, so doubling rack size leaves root time unchanged.
func BenchmarkAblationSummaryScaling(b *testing.B) {
	for _, serversPerRack := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("serversPerRack=%d", serversPerRack), func(b *testing.B) {
			// Pre-summarize 40 racks of the given size, then benchmark the
			// room-level allocation over their proxies.
			var proxies []*core.Node
			for r := 0; r < 40; r++ {
				var leaves []*core.Node
				for s := 0; s < serversPerRack; s++ {
					id := fmt.Sprintf("r%d-s%d", r, s)
					leaves = append(leaves, core.NewLeaf(id, core.SupplyLeaf{
						SupplyID: id, ServerID: id, Priority: core.Priority(s % 3),
						Share: 1, CapMin: 270, CapMax: 490, Demand: 400,
					}))
				}
				rack := core.NewShifting(fmt.Sprintf("rack%d", r), 0, leaves...)
				summary, err := core.Summarize(rack, core.GlobalPriority)
				if err != nil {
					b.Fatal(err)
				}
				proxies = append(proxies, core.NewProxy(fmt.Sprintf("proxy%d", r), summary))
			}
			room := core.NewShifting("room", 0, proxies...)
			budget := power.Watts(float64(40*serversPerRack) * 300)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Allocate(room, budget, core.GlobalPriority); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSPO measures the cost and benefit of the stranded power
// optimization's second allocation pass on the Table 3 scenario; the
// custom metric reports the watts reclaimed.
func BenchmarkAblationSPO(b *testing.B) {
	build := func() []*capmaestro.Node {
		leaf := func(id, srv string, prio capmaestro.Priority, share float64, demand capmaestro.Watts) *capmaestro.Node {
			return capmaestro.NewLeaf(id, capmaestro.SupplyLeaf{
				SupplyID: id, ServerID: srv, Priority: prio, Share: share,
				CapMin: 270, CapMax: 490, Demand: demand,
			})
		}
		x := capmaestro.NewShifting("x", 1400,
			leaf("SA-x", "SA", 1, 1, 414),
			leaf("SC-x", "SC", 0, 0.533, 433),
			leaf("SD-x", "SD", 0, 0.461, 439))
		y := capmaestro.NewShifting("y", 1400,
			leaf("SB-y", "SB", 0, 1, 415),
			leaf("SC-y", "SC", 0, 0.467, 433),
			leaf("SD-y", "SD", 0, 0.539, 439))
		return []*capmaestro.Node{x, y}
	}
	budgets := []capmaestro.Watts{700, 700}
	b.Run("single-pass", func(b *testing.B) {
		trees := build()
		for i := 0; i < b.N; i++ {
			if _, err := capmaestro.AllocateAll(trees, budgets, capmaestro.GlobalPriority); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(0, "reclaimed-W")
	})
	b.Run("with-SPO", func(b *testing.B) {
		trees := build()
		var reclaimed float64
		for i := 0; i < b.N; i++ {
			_, report, err := capmaestro.AllocateWithSPO(trees, budgets, capmaestro.GlobalPriority)
			if err != nil {
				b.Fatal(err)
			}
			reclaimed = float64(report.TotalStranded)
		}
		b.ReportMetric(reclaimed, "reclaimed-W")
	})
}

// BenchmarkControlLoop measures one second of the full simulated control
// stack (sensing + actuation) for the four-server test bed, the unit of
// work the control plane performs continuously.
func BenchmarkControlLoop(b *testing.B) {
	srv := server.MustNew(server.Config{
		ID:    "s1",
		Model: power.DefaultServerModel(),
		Supplies: []server.Supply{
			{ID: "psA", Split: 0.5},
			{ID: "psB", Split: 0.5},
		},
	})
	srv.SetUtilization(1)
	ctl := capping.MustNew(srv, capping.Config{})
	ctl.SetBudget("psB", 220)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv.Step(time.Second)
		ctl.Sense()
		if i%8 == 0 {
			ctl.Iterate()
		}
	}
}
