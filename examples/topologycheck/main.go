// Topology validation: CapMaestro's safety rests on the control tree
// matching the real wiring — a budget computed against the wrong tree can
// overload a real breaker. The paper lists runtime topology validation as
// an open industry challenge (Section 7); this example shows the
// perturb-and-observe checker finding a server plugged into the wrong CDU.
//
//	go run ./examples/topologycheck
package main

import (
	"fmt"
	"log"

	"capmaestro"
	"capmaestro/internal/topocheck"
)

// wire builds a one-feed topology connecting each server to the CDU the
// map assigns it.
func wire(assign map[string]string) (*capmaestro.Topology, error) {
	root := capmaestro.NewTopologyNode("X", capmaestro.KindUtility, 0)
	root.Feed = "X"
	rpp := root.AddChild(capmaestro.NewTopologyNode("rpp-7", capmaestro.KindRPP, 8000))
	cdus := map[string]*capmaestro.TopologyNode{
		"cdu-A": rpp.AddChild(capmaestro.NewTopologyNode("cdu-A", capmaestro.KindCDU, 3000)),
		"cdu-B": rpp.AddChild(capmaestro.NewTopologyNode("cdu-B", capmaestro.KindCDU, 3000)),
	}
	for server, cdu := range assign {
		cdus[cdu].AddChild(capmaestro.NewTopologySupply(server+"-ps", server, 1))
	}
	return capmaestro.NewTopology(root)
}

func main() {
	// Reality: db-2 was plugged into cdu-B...
	actual := map[string]string{
		"web-1": "cdu-A", "web-2": "cdu-A", "db-1": "cdu-B", "db-2": "cdu-B",
	}
	// ...but the DCIM database says cdu-A.
	declaredAssign := map[string]string{
		"web-1": "cdu-A", "web-2": "cdu-A", "db-1": "cdu-B", "db-2": "cdu-A",
	}

	actualTopo, err := wire(actual)
	if err != nil {
		log.Fatal(err)
	}
	declared, err := wire(declaredAssign)
	if err != nil {
		log.Fatal(err)
	}

	servers := make(map[string]capmaestro.ServerSpec)
	for id := range actual {
		servers[id] = capmaestro.ServerSpec{Utilization: 0.9}
	}
	derating := capmaestro.FullRating()
	s, err := capmaestro.NewSimulator(capmaestro.SimConfig{
		Topology: actualTopo,
		Servers:  servers,
		Policy:   capmaestro.GlobalPriority,
		Derating: &derating,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Verifying the declared topology by perturbing one server at a time")
	fmt.Println("and watching which branch meters respond...")
	fmt.Println()
	report, err := topocheck.Verify(declared, &topocheck.SimPlant{Sim: s}, topocheck.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report)
	if !report.OK() {
		fmt.Println("Fix the wiring (or the DCIM record) before trusting power budgets:")
		fmt.Println("a cap computed for cdu-A cannot protect cdu-B's breaker.")
	}
}
