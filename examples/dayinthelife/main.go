// Day in the life: everything working together over a compressed 24-hour
// cycle — diurnal load swings, a scheduler placing and completing a
// critical job, a demand-response event trimming the utility budget, and
// a feed failure at the worst possible moment. Throughout, CapMaestro
// keeps every breaker safe and every high-priority watt flowing.
//
//	go run ./examples/dayinthelife
//
// With -telemetry-addr HOST:PORT the run serves live metrics on /metrics
// (plus /healthz and /debug/vars) and stays up after the day completes so
// the final state can be scraped; interrupt to exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"time"

	"capmaestro"
	"capmaestro/internal/logging"
	"capmaestro/internal/workload"
)

const serversPerFeedCDU = 4

func main() {
	telAddr := flag.String("telemetry-addr", "",
		"HOST:PORT for /metrics, /healthz, and /debug/vars (empty disables)")
	traceBuffer := flag.Int("trace-buffer", 64,
		"control periods retained by the flight recorder on /debug/periods and /debug/trace.json (0 disables)")
	sloRules := flag.String("slo-rules", "",
		"JSON alert-rule file for the safety-SLO tracker on /debug/slo (empty uses the built-in rules)")
	wireCodecFlag := flag.String("wire-codec", capmaestro.CodecBinary,
		"epilogue rack transport codec: json, binary, or auto")
	logOpts := logging.RegisterFlags(flag.CommandLine)
	flag.Parse()
	logger, err := logOpts.Logger(os.Stderr)
	if err != nil {
		log.Fatal(err)
	}
	wireCodec, err := capmaestro.ParseWireCodec(*wireCodecFlag)
	if err != nil {
		log.Fatal(err)
	}
	var rec *capmaestro.FlightRecorder
	if *traceBuffer > 0 {
		rec = capmaestro.NewFlightRecorder(*traceBuffer)
	}
	var rules []capmaestro.SLORule
	if *sloRules != "" {
		if rules, err = capmaestro.LoadSLORules(*sloRules); err != nil {
			log.Fatal(err)
		}
	}
	var reg *capmaestro.TelemetryRegistry
	var ts *capmaestro.TelemetryServer
	if *telAddr != "" {
		reg = capmaestro.NewTelemetryRegistry()
		if ts, err = capmaestro.ServeTelemetry(reg, *telAddr); err != nil {
			log.Fatal(err)
		}
		defer ts.Close()
		capmaestro.MountFlightRecorder(ts, rec)
		fmt.Printf("telemetry on http://%s/metrics\n\n", ts.Addr())
	}
	// The safety-SLO tracker measures the paper's headline claim live:
	// every fault opens an exposure window, and closing it is scored
	// against the breaker's time-to-trip at the observed overload.
	tracker, err := capmaestro.NewSLOTracker(capmaestro.SLOConfig{
		Rules:    rules,
		Registry: reg,
		Recorder: rec,
		Logger:   logger,
	})
	if err != nil {
		log.Fatal(err)
	}
	capmaestro.MountSLO(ts, tracker)
	// Two feeds, one 1.6 kW-rated CDU each, four dual-corded servers.
	mkFeed := func(feed capmaestro.FeedID) *capmaestro.TopologyNode {
		root := capmaestro.NewTopologyNode(string(feed), capmaestro.KindUtility, 0)
		root.Feed = feed
		cdu := root.AddChild(capmaestro.NewTopologyNode(string(feed)+"-cdu", capmaestro.KindCDU, 1600))
		for i := 0; i < serversPerFeedCDU; i++ {
			id := fmt.Sprintf("node%d", i)
			cdu.AddChild(capmaestro.NewTopologySupply(id+"-"+string(feed), id, 0.5))
		}
		return root
	}
	topo, err := capmaestro.NewTopology(mkFeed("A"), mkFeed("B"))
	if err != nil {
		log.Fatal(err)
	}
	servers := map[string]capmaestro.ServerSpec{}
	for i := 0; i < serversPerFeedCDU; i++ {
		servers[fmt.Sprintf("node%d", i)] = capmaestro.ServerSpec{Utilization: 0.2}
	}
	derating := capmaestro.FullRating()
	s, err := capmaestro.NewSimulator(capmaestro.SimConfig{
		Topology: topo,
		Servers:  servers,
		Policy:   capmaestro.GlobalPriority,
		RootBudgets: map[capmaestro.FeedID]capmaestro.Watts{
			"A": 1600, "B": 1600,
		},
		Derating:       &derating,
		Telemetry:      reg,
		Logger:         logger,
		FlightRecorder: rec,
		SLO:            tracker,
	})
	if err != nil {
		log.Fatal(err)
	}
	sched, err := capmaestro.NewScheduler(
		[]capmaestro.SchedServer{
			{ID: "node0", Cores: 28}, {ID: "node1", Cores: 28},
			{ID: "node2", Cores: 28}, {ID: "node3", Cores: 28},
		},
		func(serverID string, _, new capmaestro.Priority) {
			if err := s.SetPriority(serverID, new); err != nil {
				log.Fatal(err)
			}
		})
	if err != nil {
		log.Fatal(err)
	}

	profile := workload.DefaultDiurnalProfile()
	profile.Peak = 0.95
	status := func(label string) {
		var total capmaestro.Watts
		for id := range servers {
			total += s.Server(id).ACPower()
		}
		fmt.Printf("%-32s fleet %6.0f W   node0 %5.1f W (throttle %4.1f%%)   tripped=%d\n",
			label, float64(total),
			float64(s.Server("node0").ACPower()), s.Server("node0").ThrottleLevel()*100,
			len(s.TrippedBreakers()))
	}
	setLoad := func(hour int) {
		u := profile.At(time.Duration(hour) * time.Hour)
		for id := range servers {
			s.SetUtilization(id, u)
		}
	}

	fmt.Println("A compressed day for a 4-server, dual-feed pod (Global Priority):")
	fmt.Println()

	setLoad(4)
	s.Run(time.Minute)
	status("04:00 overnight trough")

	setLoad(10)
	s.Run(time.Minute)
	status("10:00 morning ramp")

	// A critical batch lands on node0.
	if _, err := sched.Submit(capmaestro.Job{ID: "quarterly-close", Cores: 16, Priority: 1}); err != nil {
		log.Fatal(err)
	}
	setLoad(14)
	s.Run(time.Minute)
	status("14:00 critical job on node0")

	// Peak load and the utility calls a demand-response event: the pod
	// must shed to 1.7 kW. Low-priority servers absorb it.
	setLoad(16)
	s.SetRootBudget("A", 850)
	s.SetRootBudget("B", 850)
	s.Run(90 * time.Second)
	status("16:00 peak + demand response")

	// The event ends; moments later feed B fails at full peak load.
	s.SetRootBudget("A", 1600)
	s.SetRootBudget("B", 1600)
	s.FailFeed("B")
	s.Run(2 * time.Minute)
	status("17:30 feed B failure at peak")

	// Evening: feed restored, job finishes.
	s.RestoreFeed("B")
	if err := sched.Remove("quarterly-close"); err != nil {
		log.Fatal(err)
	}
	setLoad(22)
	s.Run(time.Minute)
	status("22:00 recovered evening")

	fmt.Println()
	if len(s.TrippedBreakers()) == 0 && len(s.InvariantViolations()) == 0 {
		fmt.Println("The whole day passed without a tripped breaker or a budget violation;")
		fmt.Println("node0's critical job kept its power through the demand-response event")
		fmt.Println("and the feed failure.")
	} else {
		fmt.Printf("PROBLEMS: tripped=%v violations=%v\n",
			s.TrippedBreakers(), s.InvariantViolations())
	}

	// The safety-SLO scoreboard: how long the pod stayed exposed after each
	// fault, and how that compares to the breaker's trip window — the
	// paper's order-of-magnitude claim as a measured number.
	fmt.Println("\nTime-to-safe summary:")
	ok := true
	for i, w := range tracker.ClosedWindows() {
		if w.Ratio > 0 {
			fmt.Printf("  window %d (%s): exposed %.0f s, breaker would trip in %.0f s — margin %.0f×\n",
				i+1, strings.Join(w.Causes, "+"), w.DurationSec, w.MinTimeToTripSec, w.Margin())
		} else {
			fmt.Printf("  window %d (%s): exposed %.0f s, no breaker overload\n",
				i+1, strings.Join(w.Causes, "+"), w.DurationSec)
		}
	}
	fmt.Printf("  p50/p99 time-to-safe: %.0f s / %.0f s   peak trip risk: %.3f\n",
		tracker.TimeToSafeQuantile(0.5), tracker.TimeToSafeQuantile(0.99), tracker.PeakRisk())
	if m := tracker.WorstMargin(); m < 10 {
		fmt.Printf("  WORST MARGIN %.1f× — below the paper's 10× claim\n", m)
		ok = false
	} else {
		fmt.Printf("  worst margin %.0f× — clears the paper's 10× claim\n", tracker.WorstMargin())
	}
	fired, resolved := tracker.TransitionCounts("feed-exposure")
	if fired == 1 && resolved == 1 {
		fmt.Println("  feed-exposure alert fired and resolved exactly once (the feed failure)")
	} else {
		fmt.Printf("  UNEXPECTED feed-exposure transitions: fired %d, resolved %d (want 1/1)\n", fired, resolved)
		ok = false
	}
	if st := tracker.Status(); st != capmaestro.HealthOK {
		fmt.Printf("  SLO status %v with active alerts %+v\n", st, tracker.ActiveAlerts())
		ok = false
	}
	if !ok {
		os.Exit(1)
	}

	// Night shift: the same control loop as a distributed deployment —
	// rack workers behind real TCP sockets, the room worker gathering and
	// budgeting over the wire. With the binary codec (the default here),
	// steady overnight load means most gathers come back as few-byte
	// "unchanged" delta frames.
	if err := distributedEpilogue(wireCodec, reg); err != nil {
		log.Fatal(err)
	}

	if *telAddr != "" {
		fmt.Println("\nday complete; telemetry still serving — Ctrl-C to exit")
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		<-sig
	}
}

// distributedEpilogue replays the overnight steady state through the TCP
// control plane: two rack workers served on loopback, a room worker
// dialing them with the chosen wire codec, and a handful of control
// periods so the binary codec's delta path engages.
func distributedEpilogue(wireCodec string, reg *capmaestro.TelemetryRegistry) error {
	fmt.Println("\nNight shift, distributed: rack workers behind TCP, codec " + wireCodec)
	if reg == nil {
		reg = capmaestro.NewTelemetryRegistry()
	}
	opts := []capmaestro.ControlPlaneOption{
		capmaestro.WithControlPlaneTelemetry(reg),
		capmaestro.WithWireCodec(wireCodec),
		capmaestro.WithDeltaDeadband(0.5),
	}
	sink := func(string, capmaestro.Watts) {}
	mkLeaf := func(id string, prio capmaestro.Priority, demand capmaestro.Watts) *capmaestro.Node {
		return capmaestro.NewLeaf(id, capmaestro.SupplyLeaf{
			SupplyID: id, ServerID: id, Priority: prio, Share: 1,
			CapMin: 150, CapMax: 400, Demand: demand,
		})
	}
	racks := map[string]*capmaestro.RackWorker{}
	for name, leaves := range map[string][]*capmaestro.Node{
		"rack-east": {mkLeaf("e0", 1, 320), mkLeaf("e1", 0, 260)},
		"rack-west": {mkLeaf("w0", 0, 240), mkLeaf("w1", 0, 240)},
	} {
		w, err := capmaestro.NewRackWorker(name,
			capmaestro.NewShifting(name, 700, leaves...),
			capmaestro.GlobalPriority, sink, opts...)
		if err != nil {
			return err
		}
		racks[name] = w
	}
	clients := map[string]capmaestro.RackClient{}
	proxies := make([]*capmaestro.Node, 0, len(racks))
	for name, w := range racks {
		srv, err := capmaestro.ServeRack(w, "127.0.0.1:0", opts...)
		if err != nil {
			return err
		}
		defer srv.Close()
		c := capmaestro.DialRack(srv.Addr(), 2*time.Second, opts...)
		defer c.Close()
		clients[name] = c
		proxies = append(proxies, capmaestro.NewProxyNode(name))
	}
	room, err := capmaestro.NewRoomWorker(
		capmaestro.NewShifting("contractual", 1400, proxies...),
		1200, capmaestro.GlobalPriority, clients, opts...)
	if err != nil {
		return err
	}
	const periods = 6
	for i := 0; i < periods; i++ {
		if _, _, err := room.RunPeriod(context.Background()); err != nil {
			return err
		}
	}
	stats := room.LastStats()
	deltaHits := reg.CounterVec("capmaestro_rpc_delta_hits_total", "", "role").With("client").Value()
	fmt.Printf("  %d control periods over TCP across %d racks, last period %d served / %d gather errors\n",
		periods, len(clients), stats.RacksServed, stats.GatherErrors)
	fmt.Printf("  unchanged-summary delta frames served from cache: %.0f\n", deltaHits)
	if wireCodec == capmaestro.CodecBinary && deltaHits == 0 {
		return fmt.Errorf("binary codec ran %d steady periods but no gather was delta-squashed", periods)
	}
	return nil
}
