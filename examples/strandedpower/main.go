// Stranded power: servers don't split load evenly across their two power
// cords, so per-feed budgets can be physically unusable — "stranded" — on
// one feed while another server on that feed is starved. This example
// rebuilds the paper's Figure 7a scenario and shows the stranded power
// optimization (SPO) reclaiming the waste.
//
//	go run ./examples/strandedpower
package main

import (
	"fmt"
	"log"

	"capmaestro"
)

func main() {
	// Two feeds, 700 W budget each. SA draws only from X (its Y cord is
	// unplugged), SB only from Y, and SC/SD draw from both with an
	// intrinsic, unchangeable split mismatch.
	leaf := func(id, srv string, prio capmaestro.Priority, share float64, demand capmaestro.Watts) *capmaestro.Node {
		return capmaestro.NewLeaf(id, capmaestro.SupplyLeaf{
			SupplyID: id, ServerID: srv, Priority: prio, Share: share,
			CapMin: 270, CapMax: 490, Demand: demand,
		})
	}
	buildTrees := func() []*capmaestro.Node {
		x := capmaestro.NewShifting("x-top", 1400,
			capmaestro.NewShifting("x-left", 750,
				leaf("SA-x", "SA", 1, 1.0, 414)),
			capmaestro.NewShifting("x-right", 750,
				leaf("SC-x", "SC", 0, 0.533, 433),
				leaf("SD-x", "SD", 0, 0.461, 439)),
		)
		y := capmaestro.NewShifting("y-top", 1400,
			capmaestro.NewShifting("y-left", 750,
				leaf("SB-y", "SB", 0, 1.0, 415)),
			capmaestro.NewShifting("y-right", 750,
				leaf("SC-y", "SC", 0, 0.467, 433),
				leaf("SD-y", "SD", 0, 0.539, 439)),
		)
		return []*capmaestro.Node{x, y}
	}
	budgets := []capmaestro.Watts{700, 700}

	trees := buildTrees()
	plain, err := capmaestro.AllocateAll(trees, budgets, capmaestro.GlobalPriority)
	if err != nil {
		log.Fatal(err)
	}
	consPlain := capmaestro.PredictConsumption(trees, plain)

	withSPO, report, err := capmaestro.AllocateWithSPO(trees, budgets, capmaestro.GlobalPriority)
	if err != nil {
		log.Fatal(err)
	}
	consSPO := capmaestro.PredictConsumption(trees, withSPO)

	fmt.Println("Budgets X/Y (W), consumption, and throughput vs. uncapped:")
	fmt.Println()
	fmt.Println("Server    w/o SPO budgets     power  tput      w/ SPO budgets      power  tput")
	demands := map[string]capmaestro.Watts{"SA": 414, "SB": 415, "SC": 433, "SD": 439}
	supplies := map[string][2]string{
		"SA": {"SA-x", ""}, "SB": {"", "SB-y"}, "SC": {"SC-x", "SC-y"}, "SD": {"SD-x", "SD-y"},
	}
	get := func(allocs []*capmaestro.Allocation, id string) (x, y capmaestro.Watts) {
		if s := supplies[id][0]; s != "" {
			x = allocs[0].Budget(s)
		}
		if s := supplies[id][1]; s != "" {
			y = allocs[1].Budget(s)
		}
		return
	}
	for _, id := range []string{"SA", "SB", "SC", "SD"} {
		x0, y0 := get(plain, id)
		x1, y1 := get(withSPO, id)
		fmt.Printf("%-6s  %6.0f / %-6.0f  %7.0f  %.2f    %6.0f / %-6.0f  %7.0f  %.2f\n",
			id, float64(x0), float64(y0), float64(consPlain[id]),
			capmaestro.NormalizedThroughput(consPlain[id], demands[id]),
			float64(x1), float64(y1), float64(consSPO[id]),
			capmaestro.NormalizedThroughput(consSPO[id], demands[id]))
	}

	fmt.Println()
	fmt.Printf("SPO found %.0f W stranded on %d supplies:\n",
		float64(report.TotalStranded), len(report.Stranded))
	for _, s := range report.Stranded {
		fmt.Printf("  %-6s budgeted %5.1f W but can draw only %5.1f W (%.1f W stranded)\n",
			s.SupplyID, float64(s.Budget), float64(s.Usable), float64(s.Stranded))
	}
	fmt.Println()
	fmt.Println("The reclaimed watts flow to SB — the server that was starving on feed Y —")
	fmt.Println("without touching SC/SD, whose consumption is pinned by their X-side budgets.")
}
