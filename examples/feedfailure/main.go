// Feed failure: the headline safety scenario for N+N redundant data
// centers. Two dual-corded servers share a pair of feeds whose CDUs are
// rated well below the combined worst-case load. When one feed fails, the
// whole load lands on the surviving feed — overloading its breaker — and
// CapMaestro must throttle the servers back under the limit before the
// breaker's UL 489 trip window expires.
//
//	go run ./examples/feedfailure
package main

import (
	"fmt"
	"log"
	"time"

	"capmaestro"
)

func main() {
	// Each feed: utility -> 800 W-rated CDU -> one cord of each server.
	mkFeed := func(feed capmaestro.FeedID) *capmaestro.TopologyNode {
		root := capmaestro.NewTopologyNode(string(feed), capmaestro.KindUtility, 0)
		root.Feed = feed
		cdu := root.AddChild(capmaestro.NewTopologyNode(string(feed)+"-cdu", capmaestro.KindCDU, 800))
		cdu.AddChild(capmaestro.NewTopologySupply("web-"+string(feed), "web", 0.5))
		cdu.AddChild(capmaestro.NewTopologySupply("batch-"+string(feed), "batch", 0.5))
		return root
	}
	topo, err := capmaestro.NewTopology(mkFeed("A"), mkFeed("B"))
	if err != nil {
		log.Fatal(err)
	}

	derating := capmaestro.FullRating() // the 800 W ratings are already usable limits
	s, err := capmaestro.NewSimulator(capmaestro.SimConfig{
		Topology: topo,
		Servers: map[string]capmaestro.ServerSpec{
			"web":   {Priority: 1, Utilization: 1.0}, // latency-critical
			"batch": {Priority: 0, Utilization: 1.0}, // throttle me first
		},
		Policy:      capmaestro.GlobalPriority,
		RootBudgets: map[capmaestro.FeedID]capmaestro.Watts{"A": 800, "B": 800},
		Derating:    &derating,
	})
	if err != nil {
		log.Fatal(err)
	}

	s.Schedule(30*time.Second, "fail feed B", func(s *capmaestro.Simulator) {
		s.FailFeed("B")
		fmt.Printf("t=%3.0fs  ** feed B fails: 980 W of demand now rides the 800 W A-side CDU\n",
			s.Now().Seconds())
	})

	fmt.Println("t(s)    A-CDU load   web power (throttle)   batch power (throttle)")
	for i := 0; i < 10; i++ {
		s.Run(10 * time.Second)
		web, batch := s.Server("web"), s.Server("batch")
		fmt.Printf("t=%3.0fs  %7.1f W   %7.1f W (%4.1f%%)      %7.1f W (%4.1f%%)\n",
			s.Now().Seconds(), float64(s.NodeLoad("A-cdu")),
			float64(web.ACPower()), web.ThrottleLevel()*100,
			float64(batch.ACPower()), batch.ThrottleLevel()*100)
	}

	fmt.Println()
	if tripped := s.TrippedBreakers(); len(tripped) == 0 {
		fmt.Println("No breaker tripped. The low-priority batch server absorbed the capping;")
		fmt.Println("the high-priority web server kept (nearly) full performance throughout.")
	} else {
		fmt.Printf("Breakers tripped: %v\n", tripped)
	}
}
