// Capacity planning: how many servers can your power infrastructure
// actually host? This example sizes a small private data center (a scaled
// down version of the paper's Table 4 facility) under each capping policy,
// for both normal operation and a worst-case feed failure.
//
//	go run ./examples/capacityplan
package main

import (
	"fmt"
	"log"

	"capmaestro"
)

func main() {
	// A modest facility: one transformer per feed, 3 RPPs each feeding 4
	// racks, 65 kW contracted per phase.
	cfg := capmaestro.DefaultDataCenterConfig()
	cfg.TransformersPerFeed = 1
	cfg.RPPsPerTransformer = 3
	cfg.CDUsPerRPP = 4
	cfg.ContractualPerPhase = capmaestro.Kilowatts(65)
	cfg.HighPriorityFraction = 0.25

	fmt.Printf("Facility: %d racks, %.0f kW contracted per phase, 25%% high-priority work.\n\n",
		cfg.Racks(), cfg.ContractualPerPhase.KW())

	// Workers: 0 fans the Monte Carlo runs over one worker per CPU; any
	// worker count produces bit-identical results for a fixed seed.
	opts := capmaestro.StudyOptions{TypicalRuns: 100, WorstCaseRuns: 20, Seed: 7, Workers: 0}
	fmt.Printf("%-16s  %-22s  %-22s\n", "Policy", "Typical capacity", "Worst-case capacity")
	for _, policy := range []capmaestro.Policy{
		capmaestro.NoPriority, capmaestro.LocalPriority, capmaestro.GlobalPriority,
	} {
		typical, err := capmaestro.FindCapacity(cfg, capmaestro.Typical, policy, opts)
		if err != nil {
			log.Fatal(err)
		}
		worst, err := capmaestro.FindCapacity(cfg, capmaestro.WorstCase, policy, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s  %4d servers (%2d/rack)  %4d servers (%2d/rack)\n",
			policy, typical.TotalServers, typical.ServersPerRack,
			worst.TotalServers, worst.ServersPerRack)
	}

	fmt.Println()
	fmt.Println("Reading: the worst-case column is what you can safely deploy. Priority-aware")
	fmt.Println("capping converts the gap between typical and worst case into extra servers:")
	fmt.Println("low-priority work is throttled during (rare) emergencies while high-priority")
	fmt.Println("work keeps within 1% of full performance.")
}
