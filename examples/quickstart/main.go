// Quickstart: build a small power control tree and see how CapMaestro's
// global priority-aware capping allocates a constrained budget.
//
// The scenario is the paper's own running example (Table 1): four servers
// that each want 430 W share a 1240 W budget under a top circuit breaker
// and two child breakers. Server SA runs high-priority work.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"capmaestro"
)

func main() {
	leaf := func(id, serverID string, prio capmaestro.Priority) *capmaestro.Node {
		return capmaestro.NewLeaf(id, capmaestro.SupplyLeaf{
			SupplyID: id,
			ServerID: serverID,
			Priority: prio,
			Share:    1.0, // single-corded: this supply carries the whole server
			CapMin:   270, // lowest enforceable power (full throttle)
			CapMax:   490, // power at full performance
			Demand:   430, // what the workload wants right now
		})
	}

	// The control tree mirrors the electrical hierarchy: a 1400 W top
	// breaker feeding two 750 W breakers with two servers each.
	build := func() *capmaestro.Node {
		return capmaestro.NewShifting("top-cb", 1400,
			capmaestro.NewShifting("left-cb", 750,
				leaf("SA-ps", "SA", 1), // high priority
				leaf("SB-ps", "SB", 0),
			),
			capmaestro.NewShifting("right-cb", 750,
				leaf("SC-ps", "SC", 0),
				leaf("SD-ps", "SD", 0),
			),
		)
	}

	const budget = 1240 // watts available at the top (demand totals 1720)

	fmt.Println("Four servers demanding 430 W each, 1240 W to share, SA is high priority.")
	fmt.Println()
	for _, policy := range []capmaestro.Policy{
		capmaestro.NoPriority, capmaestro.LocalPriority, capmaestro.GlobalPriority,
	} {
		alloc, err := capmaestro.Allocate(build(), budget, policy)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s", policy.String()+":")
		for _, s := range []string{"SA-ps", "SB-ps", "SC-ps", "SD-ps"} {
			fmt.Printf("  %s=%5.1fW", s[:2], float64(alloc.Budget(s)))
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println("Only Global Priority gives SA its full 430 W: it borrows from SC and SD")
	fmt.Println("even though they sit under a different breaker — the insight of the paper.")
}
