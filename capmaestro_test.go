// Tests of the public facade: everything a downstream user touches should
// be reachable without importing internal packages.
package capmaestro_test

import (
	"math"
	"strings"
	"testing"
	"time"

	"capmaestro"
)

func facadeLeaf(id, srv string, prio capmaestro.Priority, demand capmaestro.Watts) *capmaestro.Node {
	return capmaestro.NewLeaf(id, capmaestro.SupplyLeaf{
		SupplyID: id, ServerID: srv, Priority: prio, Share: 1,
		CapMin: 270, CapMax: 490, Demand: demand,
	})
}

func TestFacadeAllocate(t *testing.T) {
	tree := capmaestro.NewShifting("top", 1400,
		capmaestro.NewShifting("left", 750,
			facadeLeaf("SA", "SA", 1, 430), facadeLeaf("SB", "SB", 0, 430)),
		capmaestro.NewShifting("right", 750,
			facadeLeaf("SC", "SC", 0, 430), facadeLeaf("SD", "SD", 0, 430)),
	)
	alloc, err := capmaestro.Allocate(tree, 1240, capmaestro.GlobalPriority)
	if err != nil {
		t.Fatal(err)
	}
	if got := alloc.Budget("SA"); got != 430 {
		t.Errorf("SA budget = %v, want 430", got)
	}
}

func TestFacadeParsePolicy(t *testing.T) {
	p, err := capmaestro.ParsePolicy("global")
	if err != nil || p != capmaestro.GlobalPriority {
		t.Errorf("ParsePolicy(global) = %v, %v", p, err)
	}
	if _, err := capmaestro.ParsePolicy("bogus"); err == nil {
		t.Error("bogus policy should fail")
	}
}

func TestFacadeUnitsAndModels(t *testing.T) {
	if capmaestro.Kilowatts(6.9) != 6900 {
		t.Error("Kilowatts wrong")
	}
	m := capmaestro.DefaultServerModel()
	if m.CapMin != 270 || m.CapMax != 490 {
		t.Error("default model wrong")
	}
	if tp := capmaestro.NormalizedThroughput(314, 420); math.Abs(tp-0.82) > 0.01 {
		t.Errorf("throughput model = %v, want ~0.82", tp)
	}
}

func TestFacadeTopologyAndSimulator(t *testing.T) {
	mkFeed := func(feed capmaestro.FeedID) *capmaestro.TopologyNode {
		root := capmaestro.NewTopologyNode(string(feed), capmaestro.KindUtility, 0)
		root.Feed = feed
		cdu := root.AddChild(capmaestro.NewTopologyNode(string(feed)+"-cdu", capmaestro.KindCDU, 900))
		cdu.AddChild(capmaestro.NewTopologySupply("s1-"+string(feed), "s1", 0.5))
		return root
	}
	topo, err := capmaestro.NewTopology(mkFeed("A"), mkFeed("B"))
	if err != nil {
		t.Fatal(err)
	}
	derating := capmaestro.FullRating()
	s, err := capmaestro.NewSimulator(capmaestro.SimConfig{
		Topology: topo,
		Servers: map[string]capmaestro.ServerSpec{
			"s1": {Priority: 1, Utilization: 0.9},
		},
		Policy:      capmaestro.GlobalPriority,
		RootBudgets: map[capmaestro.FeedID]capmaestro.Watts{"A": 900, "B": 900},
		Derating:    &derating,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(30 * time.Second)
	if p := s.Server("s1").ACPower(); p < 400 {
		t.Errorf("uncapped server power = %v", p)
	}
	if len(s.TrippedBreakers()) != 0 {
		t.Error("unexpected breaker trip")
	}
	if d := capmaestro.DefaultDerating(); d.Fraction != 0.8 {
		t.Error("default derating wrong")
	}
}

func TestFacadeSPO(t *testing.T) {
	x := capmaestro.NewShifting("x", 0,
		capmaestro.NewLeaf("a-x", capmaestro.SupplyLeaf{
			SupplyID: "a-x", ServerID: "a", Share: 0.7,
			CapMin: 270, CapMax: 490, Demand: 480}),
	)
	y := capmaestro.NewShifting("y", 0,
		capmaestro.NewLeaf("a-y", capmaestro.SupplyLeaf{
			SupplyID: "a-y", ServerID: "a", Share: 0.3,
			CapMin: 270, CapMax: 490, Demand: 480}),
		capmaestro.NewLeaf("b-y", capmaestro.SupplyLeaf{
			SupplyID: "b-y", ServerID: "b", Share: 1,
			CapMin: 270, CapMax: 490, Demand: 490}),
	)
	trees := []*capmaestro.Node{x, y}
	budgets := []capmaestro.Watts{210, 600}
	allocs, report, err := capmaestro.AllocateWithSPO(trees, budgets, capmaestro.GlobalPriority)
	if err != nil {
		t.Fatal(err)
	}
	if len(allocs) != 2 {
		t.Fatal("expected two allocations")
	}
	cons := capmaestro.PredictConsumption(trees, allocs)
	if cons["a"] <= 0 || cons["b"] <= 0 {
		t.Errorf("consumption = %v", cons)
	}
	if report.TotalStranded < 0 {
		t.Error("negative stranding")
	}
}

func TestFacadeCapacity(t *testing.T) {
	if testing.Short() {
		t.Skip("capacity search is expensive")
	}
	cfg := capmaestro.DefaultDataCenterConfig()
	cfg.TransformersPerFeed = 1
	cfg.RPPsPerTransformer = 2
	cfg.CDUsPerRPP = 2
	cfg.ContractualPerPhase = capmaestro.Kilowatts(25)
	res, err := capmaestro.FindCapacity(cfg, capmaestro.WorstCase, capmaestro.GlobalPriority,
		capmaestro.StudyOptions{WorstCaseRuns: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalServers <= 0 {
		t.Errorf("capacity = %+v", res)
	}
}

func TestFacadeServerAndController(t *testing.T) {
	srv, err := capmaestro.NewServer(capmaestro.ServerConfig{
		ID:    "s1",
		Model: capmaestro.DefaultServerModel(),
		Supplies: []capmaestro.Supply{
			{ID: "psA", Split: 0.5},
			{ID: "psB", Split: 0.5},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := capmaestro.NewController(srv, capmaestro.ControllerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	srv.SetUtilization(1)
	ctl.SetBudget("psB", 200)
	for p := 0; p < 6; p++ {
		for s := 0; s < 8; s++ {
			srv.Step(time.Second)
			ctl.Sense()
		}
		ctl.Iterate()
	}
	if b, _ := srv.SupplyACPower("psB"); b > 202 {
		t.Errorf("psB = %v exceeds 200 W budget through the facade", b)
	}
}

func TestFacadeTopologyJSONAndVerify(t *testing.T) {
	doc := `{"feeds": [
		{"id": "X", "kind": "utility", "children": [
			{"id": "cdu1", "kind": "cdu", "rating_watts": 2000, "children": [
				{"id": "a-ps", "kind": "supply", "server": "a"}
			]},
			{"id": "cdu2", "kind": "cdu", "rating_watts": 2000, "children": [
				{"id": "b-ps", "kind": "supply", "server": "b"}
			]}
		]}
	]}`
	topo, err := capmaestro.ReadTopologyJSON(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	derating := capmaestro.FullRating()
	s, err := capmaestro.NewSimulator(capmaestro.SimConfig{
		Topology: topo,
		Servers: map[string]capmaestro.ServerSpec{
			"a": {Utilization: 1}, "b": {Utilization: 1},
		},
		Policy:   capmaestro.GlobalPriority,
		Derating: &derating,
	})
	if err != nil {
		t.Fatal(err)
	}
	report, err := capmaestro.VerifyTopology(topo, capmaestro.NewSimPlant(s))
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Errorf("self-verification failed: %s", report)
	}
}

func TestFacadeScheduler(t *testing.T) {
	var changes int
	sched, err := capmaestro.NewScheduler(
		[]capmaestro.SchedServer{{ID: "n1", Cores: 28}},
		func(string, capmaestro.Priority, capmaestro.Priority) { changes++ })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sched.Submit(capmaestro.Job{ID: "j1", Cores: 8, Priority: 1}); err != nil {
		t.Fatal(err)
	}
	if changes != 1 {
		t.Errorf("priority changes = %d, want 1", changes)
	}
	if err := sched.MeterEnergy("n1", 400, 160, time.Hour); err != nil {
		t.Fatal(err)
	}
	if sched.EnergyWh("j1") <= 0 {
		t.Error("job energy not metered")
	}
}
