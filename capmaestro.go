package capmaestro

import (
	"io"
	"time"

	"capmaestro/internal/capping"
	"capmaestro/internal/controlplane"
	"capmaestro/internal/core"
	"capmaestro/internal/dc"
	"capmaestro/internal/flightrec"
	"capmaestro/internal/power"
	"capmaestro/internal/scheduler"
	"capmaestro/internal/server"
	"capmaestro/internal/sim"
	"capmaestro/internal/slo"
	"capmaestro/internal/telemetry"
	"capmaestro/internal/topocheck"
	"capmaestro/internal/topology"
	"capmaestro/internal/workload"
)

// Power units and server models.
type (
	// Watts is the power unit used throughout the library.
	Watts = power.Watts
	// ServerModel is a server's controllable AC power envelope
	// (idle, Pcap_min, Pcap_max).
	ServerModel = power.ServerModel
)

// Kilowatts constructs a Watts value from kilowatts.
func Kilowatts(kw float64) Watts { return power.Kilowatts(kw) }

// DefaultServerModel returns the paper's Table 4 server class:
// idle 160 W, Pcap_min 270 W, Pcap_max 490 W.
func DefaultServerModel() ServerModel { return power.DefaultServerModel() }

// Control trees and allocation (the paper's core algorithm).
type (
	// Priority is a workload priority level; larger is more important.
	Priority = core.Priority
	// Policy selects how priorities influence allocation.
	Policy = core.Policy
	// Node is one node of a power control tree.
	Node = core.Node
	// SupplyLeaf is the per-power-supply endpoint of a capping controller.
	SupplyLeaf = core.SupplyLeaf
	// Allocation is the result of one budgeting run.
	Allocation = core.Allocation
	// Summary is the priority-grouped metrics a subtree reports upstream.
	Summary = core.Summary
	// SPOReport describes stranded power found and reclaimed.
	SPOReport = core.SPOReport
)

// Allocation policies evaluated in the paper.
const (
	// NoPriority distributes power proportionally to demand, ignoring
	// priorities.
	NoPriority = core.NoPriority
	// LocalPriority honors priorities only at the lowest shifting level
	// (a Dynamo-style baseline).
	LocalPriority = core.LocalPriority
	// GlobalPriority is CapMaestro's policy: priority-aware at every
	// level of the hierarchy.
	GlobalPriority = core.GlobalPriority
)

// NewShifting creates a shifting-controller node with a power limit
// (non-positive means unlimited) over the given children.
func NewShifting(id string, limit Watts, children ...*Node) *Node {
	return core.NewShifting(id, limit, children...)
}

// NewLeaf creates a capping-controller endpoint node for one power supply.
func NewLeaf(id string, leaf SupplyLeaf) *Node { return core.NewLeaf(id, leaf) }

// Allocate runs the two-phase priority-aware capping algorithm over a
// control tree with the given root budget (non-positive uses the tree's
// constraint).
func Allocate(root *Node, budget Watts, policy Policy) (*Allocation, error) {
	return core.Allocate(root, budget, policy)
}

// AllocateAll allocates each control tree independently (one per feed and
// phase, as the paper deploys).
func AllocateAll(trees []*Node, budgets []Watts, policy Policy) ([]*Allocation, error) {
	return core.AllocateAll(trees, budgets, policy)
}

// AllocateWithSPO allocates with the stranded power optimization: a second
// pass reclaims budgets that supplies cannot draw and shifts them to capped
// servers on the same feed.
func AllocateWithSPO(trees []*Node, budgets []Watts, policy Policy) ([]*Allocation, *SPOReport, error) {
	return core.AllocateWithSPO(trees, budgets, policy)
}

// PredictConsumption returns each server's achievable AC power under the
// given allocations, accounting for intrinsic per-supply load splits.
func PredictConsumption(trees []*Node, allocs []*Allocation) map[string]Watts {
	return core.PredictConsumption(trees, allocs)
}

// ParsePolicy converts "none", "local", or "global" to a Policy.
func ParsePolicy(name string) (Policy, error) { return core.ParsePolicy(name) }

// Physical topology modelling.
type (
	// Topology is a set of per-feed power-distribution trees.
	Topology = topology.Topology
	// TopologyNode is one element of the physical power hierarchy.
	TopologyNode = topology.Node
	// FeedID identifies an independent power feed ("A"/"B", "X"/"Y").
	FeedID = topology.FeedID
	// Derating converts equipment ratings into enforceable limits.
	Derating = topology.Derating
)

// DeviceKind classifies physical power-distribution equipment.
type DeviceKind = topology.Kind

// Device kinds, from the utility down to the server.
const (
	KindVirtual     = topology.KindVirtual
	KindUtility     = topology.KindUtility
	KindATS         = topology.KindATS
	KindUPS         = topology.KindUPS
	KindTransformer = topology.KindTransformer
	KindRPP         = topology.KindRPP
	KindCDU         = topology.KindCDU
	KindOutlet      = topology.KindOutlet
)

// NewTopology assembles and validates a topology from per-feed roots.
func NewTopology(roots ...*TopologyNode) (*Topology, error) { return topology.New(roots...) }

// NewTopologyNode creates an unlinked physical node; link with AddChild.
func NewTopologyNode(id string, kind DeviceKind, rating Watts) *TopologyNode {
	return topology.NewNode(id, kind, rating)
}

// NewTopologySupply creates a power-supply leaf for the given server
// carrying the split fraction r of the server's load.
func NewTopologySupply(id, serverID string, split float64) *TopologyNode {
	return topology.NewSupply(id, serverID, split)
}

// DefaultDerating applies the conventional 80% sustained-loading rule.
func DefaultDerating() Derating { return topology.DefaultDerating() }

// FullRating uses 100% of each rating (for already-derated limits).
func FullRating() Derating { return topology.FullRating() }

// ReadTopologyJSON parses and validates a declarative topology document
// (see cmd/topoctl -example for the format).
func ReadTopologyJSON(r io.Reader) (*Topology, error) { return topology.ReadJSON(r) }

// Servers and capping controllers.
type (
	// Server is a simulated dual-corded server with a node manager.
	Server = server.Server
	// ServerConfig describes a server to simulate.
	ServerConfig = server.Config
	// Supply is one power supply of a server.
	Supply = server.Supply
	// Controller is the per-supply PI capping controller (Section 4.2).
	Controller = capping.Controller
	// ControllerConfig tunes a capping controller.
	ControllerConfig = capping.Config
)

// NewServer constructs a simulated server.
func NewServer(cfg ServerConfig) (*Server, error) { return server.New(cfg) }

// NewController builds a capping controller for a node (a *Server or any
// implementation of the capping.Node sensor/actuator interface).
func NewController(node capping.Node, cfg ControllerConfig) (*Controller, error) {
	return capping.New(node, cfg)
}

// Simulation.
type (
	// Simulator is the tick-based data-center simulation.
	Simulator = sim.Simulator
	// SimConfig assembles a simulation.
	SimConfig = sim.Config
	// ServerSpec describes one simulated server's workload and class.
	ServerSpec = sim.ServerSpec
)

// NewSimulator validates the configuration and builds a simulator.
func NewSimulator(cfg SimConfig) (*Simulator, error) { return sim.New(cfg) }

// Capacity studies (the paper's Section 6.4 evaluation).
type (
	// DataCenterConfig mirrors Table 4 of the paper.
	DataCenterConfig = dc.Config
	// Scenario selects typical or worst-case operating conditions.
	Scenario = dc.Scenario
	// StudyOptions tunes the Monte Carlo capacity study.
	StudyOptions = dc.StudyOptions
	// CapacityResult reports a capacity search outcome.
	CapacityResult = dc.CapacityResult
)

// Capacity-study scenarios.
const (
	// Typical models normal operation: both feeds up, Google-profile load.
	Typical = dc.Typical
	// WorstCase models a power emergency: one feed down, all servers at
	// 100% utilization.
	WorstCase = dc.WorstCase
)

// DefaultDataCenterConfig returns the paper's Table 4 data center.
func DefaultDataCenterConfig() DataCenterConfig { return dc.DefaultConfig() }

// FindCapacity determines the largest deployable server count whose
// average cap ratio stays below the 1% criterion (Figure 9).
func FindCapacity(cfg DataCenterConfig, scenario Scenario, policy Policy, opts StudyOptions) (CapacityResult, error) {
	return dc.FindCapacity(cfg, scenario, policy, opts)
}

// Workload models.

// NormalizedThroughput estimates the relative throughput of a server
// consuming `consumed` watts against an uncapped demand of `demand` watts,
// calibrated against the paper's Apache measurements.
func NormalizedThroughput(consumed, demand Watts) float64 {
	return workload.NormalizedThroughput(consumed, demand)
}

// Observability.
type (
	// TelemetryRegistry collects counters, gauges, and histograms and
	// renders them in Prometheus text exposition format. Passing a nil
	// registry anywhere one is accepted disables instrumentation at zero
	// cost.
	TelemetryRegistry = telemetry.Registry
	// TelemetryServer exposes a registry over HTTP (/metrics, /healthz,
	// /debug/vars).
	TelemetryServer = telemetry.Server
	// FlightRecorder retains the last N control periods' traces and
	// allocation explain records in a ring buffer; mount its Handler on a
	// TelemetryServer to serve /debug/periods and /debug/trace.json.
	FlightRecorder = flightrec.Recorder
	// HealthLevel is the three-state health rollup reported by /healthz
	// and SLOTracker.Status.
	HealthLevel = telemetry.HealthLevel
)

// Health rollup levels, from healthy to failing.
const (
	HealthOK       = telemetry.HealthOK
	HealthWarn     = telemetry.HealthWarn
	HealthCritical = telemetry.HealthCritical
)

// NewTelemetryRegistry creates an empty metrics registry. Wire it into
// SimConfig.Telemetry (or the lower-level server/capping/control-plane
// configs) and serve it with ServeTelemetry.
func NewTelemetryRegistry() *TelemetryRegistry { return telemetry.NewRegistry() }

// ServeTelemetry binds addr (for example ":9090") and serves the registry's
// /metrics, /healthz, and /debug/vars endpoints in the background until the
// returned server is closed.
func ServeTelemetry(reg *TelemetryRegistry, addr string) (*TelemetryServer, error) {
	return telemetry.Serve(reg, addr)
}

// Safety SLOs: time-to-safe tracking, trip-risk scoring, and alerting.
type (
	// SLOTracker measures the paper's safety claim continuously: exposure
	// windows from fault to back-under-budget, per-feed breaker trip risk,
	// and an alert-rule engine with for-duration + deadband semantics.
	SLOTracker = slo.Tracker
	// SLOConfig assembles an SLOTracker.
	SLOConfig = slo.Config
	// SLORule is one alert rule (signal, op, threshold, for, deadband).
	SLORule = slo.Rule
)

// NewSLOTracker builds a safety-SLO tracker. Wire it into
// SimConfig.SLO or a room worker's WithSLO option, and mount its debug
// endpoint and health rollup with MountSLO. An empty SLOConfig uses the
// default alert rules.
func NewSLOTracker(cfg SLOConfig) (*SLOTracker, error) { return slo.New(cfg) }

// DefaultSLORules returns the built-in alert rules: breaker trip risk,
// time-to-safe margin below the paper's bound, open overloaded exposure,
// racks held on stale state, and persistent cap violations.
func DefaultSLORules() []SLORule { return slo.DefaultRules() }

// LoadSLORules parses an alert-rule JSON file (an array of SLORule).
func LoadSLORules(path string) ([]SLORule, error) { return slo.LoadRulesFile(path) }

// MountSLO serves the tracker's /debug/slo endpoint on the telemetry
// server and folds its alert state into /healthz (ok/warn/critical).
func MountSLO(ts *TelemetryServer, t *SLOTracker) {
	if ts == nil || t == nil {
		return
	}
	ts.Handle("/debug/slo", t.Handler())
	ts.AddLeveledCheck("slo", t.HealthCheck)
}

// NewFlightRecorder creates a flight recorder retaining the last size
// control periods (size <= 0 selects the default of 64). Wire it into
// SimConfig.FlightRecorder or a room worker's WithFlightRecorder option,
// and mount its debug endpoints with MountFlightRecorder.
func NewFlightRecorder(size int) *FlightRecorder { return flightrec.NewRecorder(size) }

// MountFlightRecorder serves rec's /debug/periods, /debug/periods/{id},
// and /debug/trace.json endpoints on the telemetry server.
func MountFlightRecorder(ts *TelemetryServer, rec *FlightRecorder) {
	if ts == nil || rec == nil {
		return
	}
	h := rec.Handler()
	ts.Handle("/debug/periods", h)
	ts.Handle("/debug/periods/", h)
	ts.Handle("/debug/trace.json", h)
}

// Job scheduling coordination (the Section 7 extension).
type (
	// Scheduler places jobs onto servers, keeps servers priority-pure
	// where possible, and pushes priority changes to the power manager.
	Scheduler = scheduler.Scheduler
	// Job is a placement request (cores + priority).
	Job = scheduler.Job
	// JobID identifies a job.
	JobID = scheduler.JobID
	// SchedServer describes a schedulable server (ID + cores).
	SchedServer = scheduler.ServerInfo
)

// NewScheduler creates a job scheduler over the given servers; onChange
// (may be nil) receives server priority changes, typically wired to
// Simulator.SetPriority or the production power manager.
func NewScheduler(servers []SchedServer, onChange scheduler.PriorityChange) (*Scheduler, error) {
	return scheduler.New(servers, onChange)
}

// Topology validation (the Section 7 extension).
type (
	// TopologyReport summarizes a wiring verification run.
	TopologyReport = topocheck.Report
	// TopologyPlant is the live system a verification perturbs.
	TopologyPlant = topocheck.Plant
)

// VerifyTopology checks a declared topology against the live system by
// perturbing one server at a time and watching which branch meters
// respond. Wrap a *Simulator with NewSimPlant to verify simulations.
func VerifyTopology(declared *Topology, plant TopologyPlant) (*TopologyReport, error) {
	return topocheck.Verify(declared, plant, topocheck.Options{})
}

// NewSimPlant adapts a running simulation to the TopologyPlant interface.
func NewSimPlant(s *Simulator) TopologyPlant { return &topocheck.SimPlant{Sim: s} }

// Distributed control plane (Section 5): rack and room workers exchanging
// summaries and budgets over pluggable wire codecs.
type (
	// RackWorker protects one rack's subtree and answers gather/budget
	// RPCs from the room worker.
	RackWorker = controlplane.RackWorker
	// RoomWorker protects the upper hierarchy; each rack appears in its
	// tree as a proxy node backed by a RackClient transport.
	RoomWorker = controlplane.RoomWorker
	// RackClient is the transport between the room worker and one rack:
	// in-process (NewLocalClient) or TCP (DialRack).
	RackClient = controlplane.RackClient
	// RackServer serves a rack worker over TCP.
	RackServer = controlplane.RackServer
	// RackTCPClient is the TCP transport end the room worker dials.
	RackTCPClient = controlplane.TCPClient
	// BudgetSink receives each supply's budget when a rack worker applies
	// an allocation.
	BudgetSink = controlplane.BudgetSink
	// ControlPlaneOption configures workers and transports.
	ControlPlaneOption = controlplane.Option
	// PeriodStats summarizes one room control period.
	PeriodStats = controlplane.PeriodStats
	// Aggregator is a mid-level hierarchy worker: a RackClient toward its
	// parent, a room worker toward its children.
	Aggregator = controlplane.Aggregator
	// Hierarchy is a sharded room → aggregator → rack control plane built
	// by BuildHierarchy.
	Hierarchy = controlplane.Hierarchy
	// HierarchyConfig declares a hierarchy's shape: levels, fan-out,
	// policy, budget.
	HierarchyConfig = controlplane.HierarchyConfig
	// RackHandle is a RackClient view of one rack on a multi-rack server;
	// handles sharing a client are gathered and pushed in batch frames.
	RackHandle = controlplane.RackHandle
)

// DefaultFanOut is the hierarchy fan-out BuildHierarchy uses when the
// config leaves it zero.
const DefaultFanOut = controlplane.DefaultFanOut

// Wire codec names for WithWireCodec and -wire-codec flags. Servers
// default to auto-detecting each connection's codec; clients default to
// JSON unless the CAPMAESTRO_WIRE_CODEC environment variable overrides.
const (
	CodecJSON   = controlplane.CodecJSON
	CodecBinary = controlplane.CodecBinary
	CodecAuto   = controlplane.CodecAuto
)

// NewRackWorker creates a rack worker over the rack's local control tree.
func NewRackWorker(id string, tree *Node, policy Policy, sink BudgetSink, opts ...ControlPlaneOption) (*RackWorker, error) {
	return controlplane.NewRackWorker(id, tree, policy, sink, opts...)
}

// NewRoomWorker creates a room worker over the upper control tree. Keys
// of racks must match the tree's proxy node IDs (NewProxyNode).
func NewRoomWorker(tree *Node, budget Watts, policy Policy, racks map[string]RackClient, opts ...ControlPlaneOption) (*RoomWorker, error) {
	return controlplane.NewRoomWorker(tree, budget, policy, racks, opts...)
}

// NewProxyNode creates an upper-tree stand-in for a remote rack; its
// summary is refreshed from the rack's worker every gather.
func NewProxyNode(id string) *Node { return core.NewProxy(id, core.NewSummary()) }

// NewLocalClient wraps a rack worker as an in-process transport for
// single-binary deployments.
func NewLocalClient(w *RackWorker) RackClient { return controlplane.LocalClient{Worker: w} }

// ServeRack serves a rack worker's gather/budget RPCs on addr.
func ServeRack(worker *RackWorker, addr string, opts ...ControlPlaneOption) (*RackServer, error) {
	return controlplane.ServeRack(worker, addr, opts...)
}

// DialRack connects lazily to a rack server; dialing and redialing happen
// per request, so it may be created before the server is up.
func DialRack(addr string, timeout time.Duration, opts ...ControlPlaneOption) *RackTCPClient {
	return controlplane.DialRack(addr, timeout, opts...)
}

// WithWireCodec selects the transport codec by name: CodecJSON,
// CodecBinary, or CodecAuto (the default — servers accept both, clients
// consult CAPMAESTRO_WIRE_CODEC then fall back to JSON). Parse
// user-supplied names with ParseWireCodec first.
func WithWireCodec(name string) ControlPlaneOption { return controlplane.WithWireCodec(name) }

// ParseWireCodec validates a codec name from a flag or config file.
func ParseWireCodec(name string) (string, error) { return controlplane.ParseWireCodec(name) }

// WithDeltaDeadband sets how far a rack's summary may drift (per metric,
// in watts) while the server still answers binary-codec gathers with a
// few-byte "unchanged" frame. Zero (default) squashes only identical
// summaries; negative disables delta responses.
func WithDeltaDeadband(d Watts) ControlPlaneOption { return controlplane.WithDeltaDeadband(d) }

// WithRPCRetry sets the TCP client's retry budget per request.
func WithRPCRetry(retries int, backoff time.Duration) ControlPlaneOption {
	return controlplane.WithRPCRetry(retries, backoff)
}

// WithControlPlaneTelemetry registers worker and transport metrics
// (including per-codec encode/decode histograms and delta-hit counters)
// with the registry.
func WithControlPlaneTelemetry(reg *TelemetryRegistry) ControlPlaneOption {
	return controlplane.WithTelemetry(reg)
}

// WithControlPlaneRecorder records per-period traces, spans, and
// allocation explains into the flight recorder.
func WithControlPlaneRecorder(rec *FlightRecorder) ControlPlaneOption {
	return controlplane.WithFlightRecorder(rec)
}

// NewAggregator creates a mid-level hierarchy worker over the given
// subtree, whose proxy nodes stand for the downstream workers in clients.
func NewAggregator(tree *Node, policy Policy, clients map[string]RackClient, opts ...ControlPlaneOption) (*Aggregator, error) {
	return controlplane.NewAggregator(tree, policy, clients, opts...)
}

// BuildHierarchy shards a flat rack set into an N-level room → aggregator
// → rack control hierarchy (cfg.Levels counts every tier, racks and room
// included).
func BuildHierarchy(racks map[string]RackClient, cfg HierarchyConfig) (*Hierarchy, error) {
	return controlplane.BuildHierarchy(racks, cfg)
}

// ServeRacks serves many rack workers from one TCP listener; clients
// reach each via RackTCPClient.Rack(id), and rack handles sharing a
// client are batched into single multiplexed frames per control period.
func ServeRacks(workers map[string]RackClient, addr string, opts ...ControlPlaneOption) (*RackServer, error) {
	return controlplane.ServeRacks(workers, addr, opts...)
}

// WithRPCConcurrency bounds a worker's in-flight rack RPCs per wave
// (default max(32, 16×GOMAXPROCS)).
func WithRPCConcurrency(n int) ControlPlaneOption {
	return controlplane.WithRPCConcurrency(n)
}

// WithHierarchyLevel labels an aggregator's telemetry with its hierarchy
// level (1 = directly above the racks); BuildHierarchy sets it
// automatically.
func WithHierarchyLevel(level int) ControlPlaneOption {
	return controlplane.WithHierarchyLevel(level)
}
