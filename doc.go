// Package capmaestro is a from-scratch implementation of CapMaestro, the
// scalable priority-aware power management architecture for data-center
// servers described in:
//
//	Y. Li, C. R. Lefurgy, K. Rajamani, M. S. Allen-Ware, G. J. Silva,
//	D. D. Heimsoth, S. Ghose, and O. Mutlu. "A Scalable Priority-Aware
//	Approach to Managing Data Center Server Power." HPCA 2019.
//
// CapMaestro lets a highly-available data center — one with N+N redundant
// power feeds — safely host far more servers on the same power
// infrastructure. It contributes three mechanisms, all implemented here:
//
//   - A closed-loop per-supply capping controller (Controller): a PI
//     feedback loop that enforces an individual AC budget on each power
//     supply of a server, using a node manager that can only cap total DC
//     power.
//
//   - Global priority-aware power capping (Allocate with GlobalPriority):
//     a two-phase, distributed algorithm over a control tree that mirrors
//     the power hierarchy. Metrics summarized by priority flow up; budgets
//     flow down; high-priority servers anywhere in the data center are
//     capped only after every lower-priority server has been throttled to
//     its minimum, as far as breaker limits allow.
//
//   - Stranded power optimization (AllocateWithSPO): budgets that a
//     supply cannot draw — because the server's intrinsic load split binds
//     on the other feed — are reclaimed and re-budgeted in a second pass.
//
// This root package is a facade over the implementation packages:
//
//	internal/power        units, server power models, demand estimation
//	internal/topology     physical power-distribution trees and derating
//	internal/breaker      UL 489-style circuit-breaker trip curves
//	internal/server       simulated servers, supplies, node managers
//	internal/capping      the per-supply PI capping controller
//	internal/core         control trees, allocation policies, SPO
//	internal/controlplane rack-/room-level workers over TCP or in-process
//	internal/sim          tick-based data-center simulation
//	internal/workload     utilization distributions and throughput models
//	internal/dc           the Table 4 data center and capacity studies
//	internal/experiments  regenerators for every table and figure
//
// See the examples directory for runnable walkthroughs, DESIGN.md for the
// system inventory, and EXPERIMENTS.md for paper-vs-measured results.
package capmaestro
