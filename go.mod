module capmaestro

go 1.22
