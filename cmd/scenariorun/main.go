// Command scenariorun executes declarative scenario files: a fleet, a
// timed event schedule, and assertions the run must satisfy.
//
//	scenariorun run scenarios/feed-failure-peak.yaml [more files...]
//	scenariorun validate scenarios/*.yaml
//	scenariorun interactive scenarios/quiet-night.yaml -listen :8080
//
// run executes each scenario and evaluates its assertions, exiting
// non-zero if any fails; with CAPMAESTRO_ARTIFACT_DIR set, a failing
// run's scenario, report, and flight-recorder Chrome trace are written
// there for offline inspection. validate checks files without running
// them and prints a one-line report per file. interactive runs the
// scenario's fleet in real time, serving the full observability plane
// (/metrics, /debug/periods, /debug/slo, /debug/fleet) plus an operator
// command surface (POST /op and stdin) against the live simulation.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"capmaestro/internal/console"
	"capmaestro/internal/flightrec"
	"capmaestro/internal/scenario"
	"capmaestro/internal/slo"
	"capmaestro/internal/telemetry"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	verb, args := os.Args[1], os.Args[2:]
	switch verb {
	case "run":
		os.Exit(runCmd(args))
	case "validate":
		os.Exit(validateCmd(args))
	case "interactive":
		os.Exit(interactiveCmd(args))
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "scenariorun: unknown verb %q\n", verb)
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  scenariorun run [-json] <file.yaml|file.json> [...]
                                                    run scenarios, evaluate assertions
  scenariorun validate <file.yaml|file.json> [...]  check files without running
  scenariorun interactive [-listen addr] [-rate n] <file>
                                                    operator console on a live fleet
`)
}

func runCmd(args []string) int {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit the run report as JSON")
	_ = fs.Parse(args)
	files := fs.Args()
	if len(files) == 0 {
		fmt.Fprintln(os.Stderr, "scenariorun run: no scenario files given")
		return 2
	}
	exit := 0
	for _, path := range files {
		f, err := scenario.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		res, err := scenario.RunFile(f, scenario.RunOptions{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			return 2
		}
		if *jsonOut {
			data, _ := json.MarshalIndent(res.Report, "", "  ")
			fmt.Println(string(data))
		} else {
			fmt.Print(res.Report.Text())
		}
		if !res.Report.OK() {
			exit = 1
			dumpArtifacts(path, f, res)
		}
	}
	return exit
}

// dumpArtifacts writes a failing run's scenario, report, and flight
// trace into CAPMAESTRO_ARTIFACT_DIR (when set) so CI uploads them.
func dumpArtifacts(path string, f *scenario.File, res *scenario.RunResult) {
	dir := os.Getenv("CAPMAESTRO_ARTIFACT_DIR")
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "scenariorun: artifact dir: %v\n", err)
		return
	}
	base := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	write := func(name string, data []byte) {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "scenariorun: %v\n", err)
			return
		}
		fmt.Fprintf(os.Stderr, "scenariorun: wrote %s\n", p)
	}
	if sc, err := f.Scenario(); err == nil {
		if data, err := sc.MarshalStable(); err == nil {
			write(base+"-scenario.json", append(data, '\n'))
		}
	}
	if data, err := json.MarshalIndent(res.Report, "", "  "); err == nil {
		write(base+"-report.json", append(data, '\n'))
	}
	var trace strings.Builder
	if err := res.Recorder.WriteChromeTrace(&trace); err == nil {
		write(base+"-trace.json", []byte(trace.String()))
	}
}

func validateCmd(args []string) int {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	_ = fs.Parse(args)
	files := fs.Args()
	if len(files) == 0 {
		fmt.Fprintln(os.Stderr, "scenariorun validate: no scenario files given")
		return 2
	}
	report, ok := scenario.ValidateFiles(files)
	fmt.Print(report)
	if !ok {
		return 1
	}
	return 0
}

func interactiveCmd(args []string) int {
	fs := flag.NewFlagSet("interactive", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:0", "telemetry + operator HTTP listen address")
	rate := fs.Int("rate", 1, "simulated seconds per wall second (0 freezes time; use step)")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "scenariorun interactive: exactly one scenario file")
		return 2
	}
	f, err := scenario.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if err := f.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	sc, err := f.Scenario()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	reg := telemetry.NewRegistry()
	rec := flightrec.NewRecorder(flightrec.DefaultBufferSize)
	tracker, err := slo.New(slo.Config{Recorder: rec, Registry: reg})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	s, err := sc.BuildSimInstrumented(scenario.SimInstruments{
		SLO:            tracker,
		FlightRecorder: rec,
		Telemetry:      reg,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	sess := console.New(s, tracker, rec)
	ts, err := telemetry.Serve(reg, *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	defer ts.Close()
	sess.Mount(ts)
	fmt.Printf("scenario %s: %d servers, operator surface on http://%s\n",
		f.Name, len(sc.Servers), ts.Addr())

	var clock <-chan struct{}
	if *rate > 0 {
		tick := time.NewTicker(time.Second)
		defer tick.Stop()
		ch := make(chan struct{})
		go func() {
			for range tick.C {
				ch <- struct{}{}
			}
		}()
		clock = ch
	}
	if err := sess.Run(os.Stdin, os.Stdout, *rate, clock); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	return 0
}
