// Command topoctl works with declarative power-topology files (the JSON
// wiring records CapMaestro builds its control trees from).
//
// Usage:
//
//	topoctl -example > dc.json       # emit a sample topology file
//	topoctl -validate dc.json        # parse + structural validation
//	topoctl -describe dc.json        # render the tree with derated limits
//	topoctl -failover dc.json        # simulate worst-case feed failures
//
// Validation catches the mistakes that undermine capping safety before
// they reach the control plane: duplicate node IDs, supplies with bad
// split fractions, splits that do not cover a server, feed or phase
// inconsistencies. The failover drill runs the full simulated stack
// (demand estimation, priority-aware allocation, PI capping, breaker
// thermal models) against the declared wiring with every server at peak
// power, failing each feed in turn, and reports whether capping protects
// every breaker.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"capmaestro/internal/core"
	"capmaestro/internal/power"
	"capmaestro/internal/sim"
	"capmaestro/internal/topology"
)

const exampleDoc = `{
  "feeds": [
    {
      "id": "A", "kind": "utility",
      "children": [
        {"id": "A-ups", "kind": "ups", "children": [
          {"id": "A-rpp1", "kind": "rpp", "rating_watts": 52000, "children": [
            {"id": "A-cdu1", "kind": "cdu", "rating_watts": 6900, "children": [
              {"id": "web1-psA", "kind": "supply", "server": "web1", "split": 0.5},
              {"id": "db1-psA", "kind": "supply", "server": "db1", "split": 0.65}
            ]}
          ]}
        ]}
      ]
    },
    {
      "id": "B", "kind": "utility",
      "children": [
        {"id": "B-ups", "kind": "ups", "children": [
          {"id": "B-rpp1", "kind": "rpp", "rating_watts": 52000, "children": [
            {"id": "B-cdu1", "kind": "cdu", "rating_watts": 6900, "children": [
              {"id": "web1-psB", "kind": "supply", "server": "web1", "split": 0.5},
              {"id": "db1-psB", "kind": "supply", "server": "db1", "split": 0.35}
            ]}
          ]}
        ]}
      ]
    }
  ]
}
`

func main() {
	var (
		validate = flag.String("validate", "", "topology file to validate")
		describe = flag.String("describe", "", "topology file to describe")
		failover = flag.String("failover", "", "topology file to run a worst-case failover drill on")
		example  = flag.Bool("example", false, "print a sample topology file")
	)
	flag.Parse()

	switch {
	case *example:
		fmt.Print(exampleDoc)
	case *failover != "":
		topo, err := load(*failover)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if !failoverDrill(topo) {
			os.Exit(1)
		}
	case *validate != "":
		topo, err := load(*validate)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%s: OK — %d nodes, %d feeds, %d servers, %d supplies\n",
			*validate, topo.NodeCount(), len(topo.Feeds()),
			len(topo.ServerIDs()), len(topo.Supplies()))
	case *describe != "":
		topo, err := load(*describe)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		printTopology(topo)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func load(path string) (*topology.Topology, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return topology.ReadJSON(f)
}

// failoverDrill simulates the worst case on the declared topology: every
// server at peak demand, each feed failed in turn, CapMaestro's Global
// Priority capping active against the derated limits. Reports per-feed
// verdicts; returns false if any drill tripped a breaker.
func failoverDrill(topo *topology.Topology) bool {
	specs := make(map[string]sim.ServerSpec)
	for _, id := range topo.ServerIDs() {
		specs[id] = sim.ServerSpec{Utilization: 1.0}
	}
	fmt.Printf("failover drill: %d servers at peak demand, Global Priority capping, 80%% derating\n\n",
		len(specs))
	ok := true
	for _, failed := range topo.Feeds() {
		s, err := sim.New(sim.Config{
			Topology: topo,
			Servers:  specs,
			Policy:   core.GlobalPriority,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return false
		}
		s.Run(30 * time.Second) // steady state with both feeds
		s.FailFeed(failed)
		s.Run(2 * time.Minute) // well past the capping window
		tripped := s.TrippedBreakers()
		var worstLoad, worstFrac float64
		var worstID string
		derating := topology.DefaultDerating()
		for _, root := range topo.Roots() {
			if root.Feed == failed {
				continue
			}
			root.Walk(func(n *topology.Node) bool {
				if n.Kind == topology.KindSupply || n.Rating <= 0 {
					return true
				}
				load := float64(s.NodeLoad(n.ID))
				frac := load / float64(derating.Limit(n))
				if frac > worstFrac {
					worstFrac, worstLoad, worstID = frac, load, n.ID
				}
				return true
			})
		}
		verdict := "SAFE"
		switch {
		case len(tripped) > 0:
			verdict = "TRIPPED " + strings.Join(tripped, ",")
			ok = false
		case len(s.InvariantViolations()) > 0:
			verdict = "BUDGET VIOLATIONS"
			ok = false
		case s.InfeasiblePeriods() > 0 || worstFrac > 1.0:
			// Even fully throttled, the fleet's minimum power exceeds the
			// sustained (derated) limit: the breaker runs chronically hot
			// and the 80% loading rule is violated.
			verdict = "OVER SUSTAINED LIMIT"
			ok = false
		}
		fmt.Printf("feed %-4s fails: %-28s hottest surviving branch %s at %.0f W (%.0f%% of sustained limit)\n",
			failed, verdict, worstID, worstLoad, worstFrac*100)
	}
	fmt.Println()
	if ok {
		fmt.Println("verdict: capping holds every breaker through any single-feed failure.")
	} else {
		fmt.Println("verdict: NOT SAFE — reduce server count or raise ratings before deploying.")
	}
	return ok
}

func printTopology(topo *topology.Topology) {
	derating := topology.DefaultDerating()
	for _, root := range topo.Roots() {
		fmt.Printf("feed %s:\n", root.Feed)
		var walk func(n *topology.Node, depth int)
		walk = func(n *topology.Node, depth int) {
			indent := strings.Repeat("  ", depth+1)
			switch {
			case n.Kind == topology.KindSupply:
				fmt.Printf("%s%-24s supply of %s (split %.0f%%)\n",
					indent, n.ID, n.ServerID, n.Split*100)
			case n.Rating > 0:
				fmt.Printf("%s%-24s %-11s rated %-9s sustained limit %s\n",
					indent, n.ID, n.Kind, n.Rating, derating.Limit(n))
			default:
				fmt.Printf("%s%-24s %s\n", indent, n.ID, n.Kind)
			}
			for _, c := range n.Children() {
				walk(c, depth+1)
			}
		}
		walk(root, 0)
	}
	var byFeed = map[topology.FeedID]power.Watts{}
	for _, s := range topo.Supplies() {
		// Peak contribution of this supply at the default 490 W class.
		byFeed[s.Feed] += power.Watts(s.Split) * power.DefaultServerModel().CapMax
	}
	fmt.Println("worst-case peak per feed (default 490 W server class, both feeds up):")
	for _, feed := range topo.Feeds() {
		fmt.Printf("  %s: %s\n", feed, byFeed[feed])
	}
}
