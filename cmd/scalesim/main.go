// Command scalesim measures control-plane scalability: it stands up
// thousands of simulated rack workers over real TCP on localhost, drives
// a sharded room/aggregator hierarchy over them, and records control-
// period latency percentiles, goroutine counts, and wire bytes.
//
// Run one ad-hoc configuration with flags:
//
//	scalesim -racks 250 -servers-per-rack 40 -levels 3 -codec binary -batch -pipeline
//
// or a declarative sweep file (see cmd/scalesim/sweeps/):
//
//	scalesim -sweep cmd/scalesim/sweeps/paper-scale.json -out BENCH_controlplane.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"capmaestro/internal/scale"
)

func main() {
	var (
		sweepPath = flag.String("sweep", "", "sweep file (JSON) declaring a list of runs; overrides the single-run flags")
		outPath   = flag.String("out", "BENCH_controlplane.json", "output path for the results file")

		racks    = flag.Int("racks", 25, "simulated racks")
		spr      = flag.Int("servers-per-rack", 40, "servers per rack")
		levels   = flag.Int("levels", 2, "worker tiers including racks and room (2 = flat, 3 = one aggregator tier)")
		fanOut   = flag.Int("fan-out", 50, "aggregator fan-out and racks per TCP endpoint")
		codec    = flag.String("codec", "binary", "wire codec: json, binary, or binary-delta")
		batch    = flag.Bool("batch", true, "multiplex each endpoint's racks into batch frames")
		pipeline = flag.Bool("pipeline", false, "overlap each period's push with the next period's gather")
		periods  = flag.Int("periods", 20, "measured control periods")
		warmup   = flag.Int("warmup", 3, "unmeasured warmup periods")
		rpcConc  = flag.Int("rpc-concurrency", 0, "max in-flight rack RPCs per worker (0 = GOMAXPROCS-scaled default)")
		rpcLatMs = flag.Float64("rpc-latency-ms", 0, "emulated one-way per-frame network latency (0 = pure loopback)")
		seed     = flag.Uint64("seed", 0, "demand-mix seed (0 = fixed default)")
		digests  = flag.Bool("digests", false, "request fleet stat digests in-band and measure their wire overhead")

		maxDigestShare = flag.Float64("max-digest-share", 0,
			"fail if any digest-enabled run's digest bytes exceed this share of inbound client bytes (0 = no budget)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var specs []scale.Spec
	sweepName := "ad-hoc"
	if *sweepPath != "" {
		sw, err := scale.LoadSweep(*sweepPath)
		if err != nil {
			fatal(err)
		}
		specs = sw.Runs
		sweepName = sw.Name
	} else {
		specs = []scale.Spec{{
			Name:           "ad-hoc",
			Racks:          *racks,
			ServersPerRack: *spr,
			Levels:         *levels,
			FanOut:         *fanOut,
			Codec:          *codec,
			Batch:          *batch,
			Pipeline:       *pipeline,
			Periods:        *periods,
			Warmup:         *warmup,
			RPCConcurrency: *rpcConc,
			RPCLatencyMs:   *rpcLatMs,
			Digests:        *digests,
			Seed:           *seed,
		}}
	}

	fmt.Printf("scalesim: sweep %q, %d run(s) on %s\n", sweepName, len(specs), scale.MachineString())
	results := make([]scale.Result, 0, len(specs))
	for i, spec := range specs {
		fmt.Printf("[%d/%d] %s: %d racks × %d servers, %d levels, fan-out %d, codec %s, batch=%v, pipeline=%v\n",
			i+1, len(specs), spec.Name, spec.Racks, spec.ServersPerRack,
			spec.Levels, spec.FanOut, spec.Codec, spec.Batch, spec.Pipeline)
		res, err := scale.Run(ctx, spec, func(format string, args ...any) {
			fmt.Printf("    "+format+"\n", args...)
		})
		if err != nil {
			fatal(err)
		}
		if spec.Digests && *maxDigestShare > 0 && res.DigestShareOfBytesIn > *maxDigestShare {
			fatal(fmt.Errorf("%s: digest wire share %.2f%% of inbound bytes exceeds budget %.2f%%",
				spec.Name, 100*res.DigestShareOfBytesIn, 100**maxDigestShare))
		}
		results = append(results, *res)
		// Fleets are large; make sure one run's servers are fully gone
		// before the next builds.
		runtime.GC()
	}

	if err := scale.WriteBench(*outPath, results); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n%s\n", *outPath, scale.Summarize(results))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "scalesim:", err)
	os.Exit(1)
}
