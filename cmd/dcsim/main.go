// Command dcsim runs the large-scale data-center capacity study of
// Section 6.4 over the Table 4 infrastructure.
//
// Usage:
//
//	dcsim -mode capacity [-scenario worst|typical] [-policy all|none|local|global]
//	dcsim -mode curve -scenario worst
//	dcsim -mode once -per-rack 36 -scenario worst -policy global
//
// Knobs: -high-frac, -capmin, -contract-kw, -typical-runs, -worst-runs,
// -workers, -seed. Monte Carlo runs fan out over -workers goroutines (0 =
// one per CPU) with bit-identical results for any worker count.
// -metrics-out FILE additionally dumps the study's results as a
// Prometheus text snapshot next to the tabular output. The paper's headline
// numbers (30% high-priority): typical 6318 servers for every policy; worst
// case 3888 / 4860 / 5832 for No/Local/Global Priority.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"math/rand"
	"os"

	"capmaestro/internal/core"
	"capmaestro/internal/dc"
	"capmaestro/internal/logging"
	"capmaestro/internal/power"
	"capmaestro/internal/slo"
	"capmaestro/internal/telemetry"
)

func main() {
	var (
		mode       = flag.String("mode", "capacity", "capacity | curve | once")
		scenario   = flag.String("scenario", "worst", "worst | typical")
		policyName = flag.String("policy", "all", "all | none | local | global")
		perRack    = flag.Int("per-rack", 36, "servers per rack (mode=once)")
		highFrac   = flag.Float64("high-frac", 0.30, "fraction of high-priority servers")
		capMin     = flag.Float64("capmin", 270, "server Pcap_min in watts")
		contractKW = flag.Float64("contract-kw", 700, "contractual budget per phase, kW")
		typRuns    = flag.Int("typical-runs", 0, "typical-case runs per count (0=default)")
		worstRuns  = flag.Int("worst-runs", 0, "worst-case runs per count (0=default)")
		workers    = flag.Int("workers", 0, "Monte Carlo worker goroutines (0 = one per CPU)")
		seed       = flag.Int64("seed", 42, "random seed")
		metricsOut = flag.String("metrics-out", "", "write results as Prometheus text to FILE")
		sloRules   = flag.String("slo-rules", "",
			"JSON alert-rule file evaluated once against study results (signals: cap_ratio, cap_ratio_high, capacity_servers, capped_servers, infeasible; label = policy); a firing critical rule exits 1")
		logOpts = logging.RegisterFlags(flag.CommandLine)
	)
	flag.Parse()

	logger, err := logOpts.Logger(os.Stderr)
	if err != nil {
		fatalf("%v", err)
	}
	slog.SetDefault(logger)

	reg := telemetry.NewRegistry()

	// With -slo-rules the study doubles as a capacity gate: results are fed
	// to the alert-rule engine as one evaluation (so rules should use
	// for_periods <= 1), labeled by policy, and a firing critical rule fails
	// the run. The slo_* metric families ride along in -metrics-out.
	var tracker *slo.Tracker
	var sloSamples []slo.Sample
	if *sloRules != "" {
		rules, err := slo.LoadRulesFile(*sloRules)
		if err != nil {
			fatalf("%v", err)
		}
		tracker, err = slo.New(slo.Config{Rules: rules, Registry: reg, Logger: logger})
		if err != nil {
			fatalf("%v", err)
		}
	}

	cfg := dc.DefaultConfig()
	cfg.HighPriorityFraction = *highFrac
	cfg.Model.CapMin = power.Watts(*capMin)
	cfg.ContractualPerPhase = power.Kilowatts(*contractKW)

	var scen dc.Scenario
	switch *scenario {
	case "worst":
		scen = dc.WorstCase
	case "typical":
		scen = dc.Typical
	default:
		fatalf("unknown scenario %q", *scenario)
	}

	var policies []core.Policy
	if *policyName == "all" {
		policies = []core.Policy{core.NoPriority, core.LocalPriority, core.GlobalPriority}
	} else {
		p, err := core.ParsePolicy(*policyName)
		if err != nil {
			fatalf("%v", err)
		}
		policies = []core.Policy{p}
	}

	opts := dc.StudyOptions{TypicalRuns: *typRuns, WorstCaseRuns: *worstRuns, Workers: *workers, Seed: *seed}
	logger.Debug("study configured",
		"mode", *mode, "scenario", scen.String(), "policies", *policyName,
		"seed", *seed, "workers", *workers)
	if scen == dc.Typical && (*mode == "capacity" || *mode == "curve") {
		fmt.Printf("(typical case: %d stratified runs per server count)\n", opts.EffectiveTypicalRuns())
	}

	switch *mode {
	case "capacity":
		capacity := reg.GaugeVec("capmaestro_dc_capacity_servers",
			"Largest deployable server count meeting the 1% cap-ratio criterion.",
			"policy", "scenario")
		ratio := reg.GaugeVec("capmaestro_dc_capacity_cap_ratio",
			"Average cap ratio at the found capacity.", "policy", "scenario")
		fmt.Printf("%-16s %-13s %10s %8s %12s\n", "Policy", "Scenario", "Per rack", "Servers", "Criterion")
		for _, p := range policies {
			res, err := dc.FindCapacity(cfg, scen, p, opts)
			if err != nil {
				fatalf("%v: %v", p, err)
			}
			fmt.Printf("%-16s %-13s %10d %8d %11.3f%%\n",
				p, scen, res.ServersPerRack, res.TotalServers, res.Ratio*100)
			capacity.With(p.String(), scen.String()).Set(float64(res.TotalServers))
			ratio.With(p.String(), scen.String()).Set(res.Ratio)
			sloSamples = append(sloSamples,
				slo.Sample{Signal: "cap_ratio", Label: p.String(), Value: res.Ratio},
				slo.Sample{Signal: "capacity_servers", Label: p.String(), Value: float64(res.TotalServers)})
		}
	case "curve":
		fmt.Printf("%-8s %-9s", "PerRack", "Servers")
		for _, p := range policies {
			fmt.Printf(" %14s(all) %13s(high)", p, p)
		}
		fmt.Println()
		curves := make([][]dc.CurvePoint, len(policies))
		for i, p := range policies {
			c, err := dc.CapRatioCurve(cfg, scen, p, opts)
			if err != nil {
				fatalf("%v: %v", p, err)
			}
			curves[i] = c
		}
		for j := range curves[0] {
			fmt.Printf("%-8d %-9d", curves[0][j].ServersPerRack, curves[0][j].TotalServers)
			for i := range policies {
				fmt.Printf(" %19.4f %19.4f", curves[i][j].CapRatioAll, curves[i][j].CapRatioHigh)
			}
			fmt.Println()
		}
	case "once":
		cfg.ServersPerRack = *perRack
		built, err := dc.Build(cfg, scen)
		if err != nil {
			fatalf("%v", err)
		}
		rng := rand.New(rand.NewSource(*seed))
		capped := reg.GaugeVec("capmaestro_dc_run_capped_servers",
			"Servers capped below demand in a single study run.", "policy", "scenario")
		ratioAll := reg.GaugeVec("capmaestro_dc_run_cap_ratio",
			"Mean cap ratio over all servers in a single study run.", "policy", "scenario")
		for _, p := range policies {
			avgUtil := 1.0
			r, err := built.Run(rng, p, avgUtil)
			if err != nil {
				fatalf("%v: %v", p, err)
			}
			fmt.Printf("%-16s servers=%d high=%d capped=%d capRatioAll=%.4f capRatioHigh=%.4f infeasible=%v\n",
				p, r.TotalServers, r.HighServers, r.CappedServers,
				r.MeanCapRatioAll, r.MeanCapRatioHigh, r.Infeasible)
			capped.With(p.String(), scen.String()).Set(float64(r.CappedServers))
			ratioAll.With(p.String(), scen.String()).Set(r.MeanCapRatioAll)
			infeasible := 0.0
			if r.Infeasible {
				infeasible = 1
			}
			sloSamples = append(sloSamples,
				slo.Sample{Signal: "cap_ratio", Label: p.String(), Value: r.MeanCapRatioAll},
				slo.Sample{Signal: "cap_ratio_high", Label: p.String(), Value: r.MeanCapRatioHigh},
				slo.Sample{Signal: "capped_servers", Label: p.String(), Value: float64(r.CappedServers)},
				slo.Sample{Signal: "infeasible", Label: p.String(), Value: infeasible})
		}
	case "binding":
		cfg.ServersPerRack = *perRack
		built, err := dc.Build(cfg, scen)
		if err != nil {
			fatalf("%v", err)
		}
		rng := rand.New(rand.NewSource(*seed))
		for _, p := range policies {
			r, err := built.AnalyzeBinding(rng, p, 1.0)
			if err != nil {
				fatalf("%v: %v", p, err)
			}
			fmt.Printf("%s — saturated nodes per level at %d/rack (%s):\n", p, *perRack, scen)
			for _, level := range r.Levels() {
				fmt.Printf("  %-12s %4d of %4d\n", level, r.Binding[level], r.Total[level])
			}
		}
	default:
		fatalf("unknown mode %q", *mode)
	}

	critical := false
	if tracker != nil {
		tracker.EvalPeriod(tracker.Uptime(), sloSamples...)
		if alerts := tracker.ActiveAlerts(); len(alerts) > 0 {
			fmt.Println("\nSLO rule evaluation:")
			for _, a := range alerts {
				fmt.Printf("  %s: %s{%s} = %g\n", a.Severity, a.Rule, a.Label, a.Value)
				if a.Severity == slo.SeverityCritical {
					critical = true
				}
			}
		} else {
			fmt.Println("\nSLO rule evaluation: all rules clear")
		}
	}

	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			fatalf("%v", err)
		}
		if err := reg.WritePrometheus(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fatalf("writing %s: %v", *metricsOut, err)
		}
		fmt.Printf("(metrics written to %s)\n", *metricsOut)
	}
	if critical {
		os.Exit(1)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
