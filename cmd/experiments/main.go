// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run all [-fast] [-seed N] [-csv DIR]
//	experiments -run table2,fig9
//
// Each experiment prints its measured rows/series next to the values the
// paper reports. -csv writes the time series of figure experiments as CSV
// files for external plotting, plus a .prom Prometheus-text snapshot of
// each series' final/min/max values alongside every CSV.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"capmaestro/internal/experiments"
	"capmaestro/internal/telemetry"
	"capmaestro/internal/trace"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list experiment IDs and exit")
		run     = flag.String("run", "all", "comma-separated experiment IDs, or 'all'")
		fast    = flag.Bool("fast", false, "reduce Monte Carlo run counts for a quick pass")
		seed    = flag.Int64("seed", 0, "random seed for reproducibility")
		workers = flag.Int("workers", 0, "Monte Carlo worker goroutines (0 = one per CPU)")
		csvDir  = flag.String("csv", "", "directory to write figure time series as CSV")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-14s %s\n", e.ID, e.Title)
		}
		return
	}

	var selected []experiments.Experiment
	if *run == "all" {
		selected = experiments.Registry()
	} else {
		for _, id := range strings.Split(*run, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiments.Find(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; known: %s\n",
					id, strings.Join(experiments.IDs(), ", "))
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	opts := experiments.Options{Fast: *fast, Seed: *seed, Workers: *workers}
	for _, e := range selected {
		fmt.Printf("=== %s — %s ===\n", e.ID, e.Title)
		res, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Println(res.Text)
		if *csvDir != "" && res.Recorder != nil {
			path := filepath.Join(*csvDir, res.ID+".csv")
			if err := writeCSV(path, res); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
				os.Exit(1)
			}
			promPath := filepath.Join(*csvDir, res.ID+".prom")
			if err := writeProm(promPath, res); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
				os.Exit(1)
			}
			fmt.Printf("(series written to %s, metrics to %s)\n\n", path, promPath)
		}
	}
}

func writeCSV(path string, res *experiments.Result) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return res.Recorder.WriteCSV(f)
}

// writeProm dumps a Prometheus-text snapshot of the experiment's recorded
// series through the trace→telemetry bridge.
func writeProm(path string, res *experiments.Result) error {
	reg := telemetry.NewRegistry()
	trace.ExportMetrics(res.Recorder, reg)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return reg.WritePrometheus(f)
}
