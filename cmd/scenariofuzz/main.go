// Command scenariofuzz drives the scenario harness outside go test: it
// generates and verifies seeded scenarios in bulk, minimizes any failure
// to its smallest still-failing form, and writes it as replayable JSON.
//
//	scenariofuzz -count 1000 -seed 1 -out failures/
//	scenariofuzz -replay failures/gen-178-min.json
//	scenariofuzz -emit corpus/gen-42.json -seed 42
//
// A failing scenario written by one invocation replays bit-identically in
// another (or in TestCorpusReplay once committed to testdata/corpus).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"capmaestro/internal/scenario"
)

func main() {
	var (
		count    = flag.Int("count", 100, "scenarios to generate and verify")
		seed     = flag.Int64("seed", 1, "base seed; scenario i uses seed+i")
		outDir   = flag.String("out", "failures", "directory for failing scenario JSONs")
		replay   = flag.String("replay", "", "verify one scenario JSON file and exit")
		emit     = flag.String("emit", "", "write the scenario for -seed to this file and exit (no verification)")
		minimize = flag.Bool("minimize", true, "minimize failing scenarios before writing")
	)
	flag.Parse()

	switch {
	case *replay != "":
		os.Exit(replayFile(*replay))
	case *emit != "":
		os.Exit(emitFile(*emit, *seed))
	default:
		os.Exit(sweep(*count, *seed, *outDir, *minimize))
	}
}

func replayFile(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	sc, err := scenario.Load(data)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if err := scenario.Verify(sc); err != nil {
		fmt.Fprintf(os.Stderr, "FAIL %s: %v\n", sc.Name, err)
		return 1
	}
	fmt.Printf("ok %s (seed %d, %d servers, %d events, %ds)\n",
		sc.Name, sc.Seed, len(sc.Servers), len(sc.Events), sc.DurationSec)
	return 0
}

func emitFile(path string, seed int64) int {
	sc := scenario.Generate(seed)
	data, err := sc.MarshalStable()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	fmt.Printf("wrote %s (seed %d)\n", path, seed)
	return 0
}

func sweep(count int, seed int64, outDir string, minimize bool) int {
	failures := 0
	for i := 0; i < count; i++ {
		s := seed + int64(i)
		sc := scenario.Generate(s)
		err := scenario.Verify(sc)
		if err == nil {
			continue
		}
		failures++
		fmt.Fprintf(os.Stderr, "FAIL seed %d: %v\n", s, err)
		if minimize {
			sc = scenario.Minimize(sc, func(c *scenario.Scenario) bool {
				return scenario.Verify(c) != nil
			})
			if merr := scenario.Verify(sc); merr != nil {
				fmt.Fprintf(os.Stderr, "  minimized to %d servers, %d events, %ds: %v\n",
					len(sc.Servers), len(sc.Events), sc.DurationSec, merr)
			}
		}
		if werr := writeFailure(outDir, sc); werr != nil {
			fmt.Fprintln(os.Stderr, " ", werr)
		}
	}
	fmt.Printf("%d/%d scenarios passed\n", count-failures, count)
	if failures > 0 {
		return 1
	}
	return 0
}

func writeFailure(dir string, sc *scenario.Scenario) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := sc.MarshalStable()
	if err != nil {
		return err
	}
	path := filepath.Join(dir, sc.Name+".json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "  wrote %s\n", path)
	return nil
}
