// Command capmaestro runs the CapMaestro control plane against a simulated
// test bed, demonstrating the three headline mechanisms end to end.
//
// Usage:
//
//	capmaestro -demo capping      # per-supply budget enforcement (Fig. 5)
//	capmaestro -demo feedfail     # feed failure: cap within the breaker window
//	capmaestro -demo spo          # stranded power optimization (Fig. 7)
//	capmaestro -demo distributed  # rack/room workers over real TCP sockets
//	capmaestro -demo scheduler    # job scheduler driving server priorities
//	capmaestro -demo serve        # full stack running until interrupted
//
// With -telemetry-addr HOST:PORT the process serves Prometheus metrics on
// /metrics, liveness on /healthz, a JSON snapshot on /debug/vars, and — in
// the serve demo — the fleet observability drill-down on /debug/fleet and
// /debug/fleet/history; the serve demo defaults the address to :9090.
// Every demo is deterministic and uses only the simulated substrate, so it
// runs anywhere.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"capmaestro/internal/capping"
	"capmaestro/internal/controlplane"
	"capmaestro/internal/core"
	"capmaestro/internal/experiments"
	"capmaestro/internal/fleetobs"
	"capmaestro/internal/flightrec"
	"capmaestro/internal/logging"
	"capmaestro/internal/power"
	"capmaestro/internal/scheduler"
	"capmaestro/internal/server"
	"capmaestro/internal/sim"
	"capmaestro/internal/slo"
	"capmaestro/internal/telemetry"
	"capmaestro/internal/topology"
)

func main() {
	demo := flag.String("demo", "feedfail", "capping | feedfail | spo | distributed | scheduler | serve")
	telAddr := flag.String("telemetry-addr", "",
		"HOST:PORT for the /metrics, /healthz, and /debug/vars endpoints (empty disables; serve demo defaults to :9090)")
	stalePeriods := flag.Int("staleness-periods", controlplane.DefaultStalenessBound,
		"serve demo: consecutive failed gathers before the room worker holds a rack's budget pushes (<=0 never holds)")
	failsafe := flag.Float64("failsafe-budget", 0,
		"serve demo: watts reserved for a rack that has never reported a summary (0 excludes it from allocation)")
	rpcRetries := flag.Int("rpc-retries", controlplane.DefaultRPCRetries,
		"serve demo: transport retries per rack RPC after a failure (<=0 disables)")
	rpcBackoff := flag.Duration("rpc-retry-backoff", controlplane.DefaultRPCRetryBackoff,
		"serve demo: initial backoff between rack RPC retries (doubles per retry)")
	wireCodec := flag.String("wire-codec", controlplane.CodecAuto,
		"distributed/serve demos: rack transport codec — json, binary, or auto (servers detect per connection; clients follow "+
			controlplane.WireCodecEnv+", defaulting to json)")
	traceBuffer := flag.Int("trace-buffer", flightrec.DefaultBufferSize,
		"serve demo: control periods retained by the flight recorder on /debug/periods and /debug/trace.json (0 disables)")
	sloRules := flag.String("slo-rules", "",
		"serve demo: JSON alert-rule file for the safety-SLO tracker on /debug/slo (empty uses the built-in rules)")
	fleetDigests := flag.Bool("fleet-digests", true,
		"serve demo: request per-rack stat digests in-band on gathers and serve the merged fleet rollup on /debug/fleet")
	fleetHistory := flag.Int("fleet-history", 0,
		"serve demo: control periods retained by the /debug/fleet/history ring (<=0 uses the built-in default)")
	pprofOn := flag.Bool("pprof", false,
		"mount net/http/pprof profiling handlers on the telemetry server under /debug/pprof/")
	logOpts := logging.RegisterFlags(flag.CommandLine)
	flag.Parse()

	logger, err := logOpts.Logger(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	codec, err := controlplane.ParseWireCodec(*wireCodec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	addr := *telAddr
	if addr == "" && *demo == "serve" {
		addr = ":9090"
	}
	var reg *telemetry.Registry
	var ts *telemetry.Server
	if addr != "" {
		reg = telemetry.NewRegistry()
		ts, err = telemetry.Serve(reg, addr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer ts.Close()
		if *pprofOn {
			ts.EnablePprof()
		}
		fmt.Printf("telemetry on http://%s/metrics\n", ts.Addr())
	}
	switch *demo {
	case "capping":
		err = demoCapping()
	case "feedfail":
		err = demoFeedFailure()
	case "spo":
		err = demoSPO()
	case "distributed":
		err = demoDistributed(reg, codec)
	case "scheduler":
		err = demoScheduler()
	case "serve":
		err = demoServe(reg, ts, logger, serveConfig{
			stalenessPeriods: *stalePeriods,
			failsafeBudget:   power.Watts(*failsafe),
			rpcRetries:       *rpcRetries,
			rpcRetryBackoff:  *rpcBackoff,
			traceBuffer:      *traceBuffer,
			sloRulesFile:     *sloRules,
			wireCodec:        codec,
			fleetDigests:     *fleetDigests,
			fleetHistory:     *fleetHistory,
		})
	default:
		err = fmt.Errorf("unknown demo %q", *demo)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// demoCapping drives a single dual-corded server through the Figure 5
// scenario using the per-supply PI controller directly.
func demoCapping() error {
	res, err := experiments.Figure5(experiments.Options{})
	if err != nil {
		return err
	}
	fmt.Println("Per-supply power cap enforcement (paper Figure 5):")
	fmt.Println(res.Text)
	return nil
}

// demoFeedFailure builds a small N+N test bed, fails the Y feed mid-run,
// and reports how capping protects the surviving feed's breaker.
func demoFeedFailure() error {
	mkFeed := func(feed topology.FeedID) *topology.Node {
		root := topology.NewNode(string(feed), topology.KindUtility, 0)
		root.Feed = feed
		cdu := root.AddChild(topology.NewNode(string(feed)+"-cdu", topology.KindCDU, 800))
		cdu.AddChild(topology.NewSupply("s1-"+string(feed), "s1", 0.5))
		cdu.AddChild(topology.NewSupply("s2-"+string(feed), "s2", 0.5))
		return root
	}
	topo, err := topology.New(mkFeed("X"), mkFeed("Y"))
	if err != nil {
		return err
	}
	derating := topology.FullRating()
	s, err := sim.New(sim.Config{
		Topology: topo,
		Servers: map[string]sim.ServerSpec{
			"s1": {Utilization: 1, Priority: 1},
			"s2": {Utilization: 1},
		},
		Policy:      core.GlobalPriority,
		RootBudgets: map[topology.FeedID]power.Watts{"X": 800, "Y": 800},
		Derating:    &derating,
	})
	if err != nil {
		return err
	}
	fmt.Println("N+N feed failure demo: two 490 W servers, 800 W-rated CDUs per feed.")
	fmt.Println("Feed Y fails at t=30s; the UL 489 window at the resulting overload is ~93s.")
	fmt.Println()
	s.Schedule(30*time.Second, "fail feed Y", func(s *sim.Simulator) {
		s.FailFeed("Y")
		fmt.Printf("t=%3.0fs  !! feed Y FAILED — full load shifts to feed X\n", s.Now().Seconds())
	})
	for t := 0; t < 12; t++ {
		s.Run(10 * time.Second)
		fmt.Printf("t=%3.0fs  X-CDU load %6.1f W  s1 %5.1f W (throttle %4.1f%%)  s2 %5.1f W  tripped=%v\n",
			s.Now().Seconds(), float64(s.NodeLoad("X-cdu")),
			float64(s.Server("s1").ACPower()), s.Server("s1").ThrottleLevel()*100,
			float64(s.Server("s2").ACPower()), s.TrippedBreakers())
	}
	if len(s.TrippedBreakers()) == 0 {
		fmt.Println("\nNo breaker tripped: capping shed the load inside the trip window.")
	} else {
		fmt.Println("\nBREAKERS TRIPPED — capping failed to protect the feed.")
	}
	return nil
}

// demoSPO runs the Table 3 / Figure 7 stranded power scenario.
func demoSPO() error {
	res, err := experiments.Table3(experiments.Options{})
	if err != nil {
		return err
	}
	fmt.Println("Stranded power optimization (paper Table 3 / Figure 7b):")
	fmt.Println(res.Text)
	return nil
}

// demoScheduler shows the Section 7 coordination: a job scheduler places
// work, pushes server priority changes into the power manager, and the
// next control periods shift power toward the newly critical server.
func demoScheduler() error {
	root := topology.NewNode("X", topology.KindUtility, 0)
	root.Feed = "X"
	cdu := root.AddChild(topology.NewNode("cdu", topology.KindCDU, 900))
	cdu.AddChild(topology.NewSupply("node-a-ps", "node-a", 1))
	cdu.AddChild(topology.NewSupply("node-b-ps", "node-b", 1))
	topo, err := topology.New(root)
	if err != nil {
		return err
	}
	derating := topology.FullRating()
	s, err := sim.New(sim.Config{
		Topology: topo,
		Servers: map[string]sim.ServerSpec{
			"node-a": {Utilization: 1},
			"node-b": {Utilization: 1},
		},
		Policy:      core.GlobalPriority,
		RootBudgets: map[topology.FeedID]power.Watts{"X": 760},
		Derating:    &derating,
	})
	if err != nil {
		return err
	}
	sched, err := scheduler.New(
		[]scheduler.ServerInfo{{ID: "node-a", Cores: 28}, {ID: "node-b", Cores: 28}},
		func(serverID string, old, new core.Priority) {
			fmt.Printf("         scheduler -> power manager: %s priority %d -> %d\n",
				serverID, old, new)
			if err := s.SetPriority(serverID, new); err != nil {
				panic(err)
			}
		})
	if err != nil {
		return err
	}

	report := func(label string) {
		fmt.Printf("%-26s node-a %5.1f W   node-b %5.1f W\n", label,
			float64(s.Server("node-a").ACPower()), float64(s.Server("node-b").ACPower()))
	}
	fmt.Println("Two 490 W servers share a 760 W budget (both low priority).")
	s.Run(time.Minute)
	report("steady state:")

	fmt.Println("\nA critical 8-core job arrives...")
	placed, err := sched.Submit(scheduler.Job{ID: "critical-db", Cores: 8, Priority: 1})
	if err != nil {
		return err
	}
	fmt.Printf("         placed on %s\n", placed)
	s.Run(time.Minute)
	report("after priority shift:")

	fmt.Println("\nThe job completes...")
	if err := sched.Remove("critical-db"); err != nil {
		return err
	}
	s.Run(time.Minute)
	report("back to even split:")
	return nil
}

// demoDistributed wires two rack workers to a room worker over loopback
// TCP and runs control periods, printing each rack's budget. With
// -telemetry-addr set, reg is non-nil and every layer is instrumented.
func demoDistributed(reg *telemetry.Registry, wireCodec string) error {
	opts := []controlplane.Option{
		controlplane.WithTelemetry(reg),
		controlplane.WithWireCodec(wireCodec),
	}
	var mu sync.Mutex
	budgets := map[string]power.Watts{}
	sink := func(supplyID string, b power.Watts) {
		mu.Lock()
		budgets[supplyID] = b
		mu.Unlock()
	}
	mkLeaf := func(id, srv string, prio core.Priority, demand power.Watts) *core.Node {
		return core.NewLeaf(id, core.SupplyLeaf{
			SupplyID: id, ServerID: srv, Priority: prio, Share: 1,
			CapMin: 270, CapMax: 490, Demand: demand,
		})
	}
	left, err := controlplane.NewRackWorker("rack-left",
		core.NewShifting("rack-left", 750,
			mkLeaf("SA-ps", "SA", 1, 430), mkLeaf("SB-ps", "SB", 0, 430)),
		core.GlobalPriority, sink, opts...)
	if err != nil {
		return err
	}
	right, err := controlplane.NewRackWorker("rack-right",
		core.NewShifting("rack-right", 750,
			mkLeaf("SC-ps", "SC", 0, 430), mkLeaf("SD-ps", "SD", 0, 430)),
		core.GlobalPriority, sink, opts...)
	if err != nil {
		return err
	}

	leftSrv, err := controlplane.ServeRack(left, "127.0.0.1:0", opts...)
	if err != nil {
		return err
	}
	defer leftSrv.Close()
	rightSrv, err := controlplane.ServeRack(right, "127.0.0.1:0", opts...)
	if err != nil {
		return err
	}
	defer rightSrv.Close()
	fmt.Printf("rack workers listening on %s and %s\n\n", leftSrv.Addr(), rightSrv.Addr())

	leftClient := controlplane.DialRack(leftSrv.Addr(), time.Second, opts...)
	defer leftClient.Close()
	rightClient := controlplane.DialRack(rightSrv.Addr(), time.Second, opts...)
	defer rightClient.Close()

	roomTree := core.NewShifting("contractual", 1400,
		core.NewProxy("rack-left", core.NewSummary()),
		core.NewProxy("rack-right", core.NewSummary()),
	)
	room, err := controlplane.NewRoomWorker(roomTree, 1240, core.GlobalPriority,
		map[string]controlplane.RackClient{
			"rack-left": leftClient, "rack-right": rightClient,
		}, opts...)
	if err != nil {
		return err
	}

	for period := 1; period <= 3; period++ {
		alloc, stats, err := room.RunPeriod(context.Background())
		if err != nil {
			return err
		}
		fmt.Printf("control period %d (%v, gather errs %d, apply errs %d):\n",
			period, stats.Elapsed.Round(time.Microsecond), stats.GatherErrors, stats.ApplyErrors)
		fmt.Printf("  rack budgets: left %.0f W, right %.0f W\n",
			float64(alloc.NodeBudgets["rack-left"]), float64(alloc.NodeBudgets["rack-right"]))
		mu.Lock()
		fmt.Printf("  supply budgets: SA %.0f, SB %.0f, SC %.0f, SD %.0f\n",
			float64(budgets["SA-ps"]), float64(budgets["SB-ps"]),
			float64(budgets["SC-ps"]), float64(budgets["SD-ps"]))
		mu.Unlock()
	}
	fmt.Println("\n(high-priority SA receives its full 430 W; low-priority servers sit at Pcap_min)")
	return nil
}

// serveConfig carries the serve demo's degraded-mode knobs: how long the
// room worker trusts stale rack summaries, what it reserves for racks that
// have never reported, and how the transport retries failed RPCs.
type serveConfig struct {
	stalenessPeriods int
	failsafeBudget   power.Watts
	rpcRetries       int
	rpcRetryBackoff  time.Duration
	traceBuffer      int
	sloRulesFile     string
	wireCodec        string
	fleetDigests     bool
	fleetHistory     int
}

// demoServe runs the whole stack continuously until SIGINT/SIGTERM:
// simulated servers with per-server capping controllers, rack workers
// behind real TCP sockets, and a room worker driving 2-second control
// periods. Every layer reports into the telemetry registry, and /healthz
// tracks whether the room worker can still reach its racks.
func demoServe(reg *telemetry.Registry, ts *telemetry.Server, logger *slog.Logger, cfg serveConfig) error {
	opts := []controlplane.Option{
		controlplane.WithTelemetry(reg),
		controlplane.WithLogger(logger),
		controlplane.WithStalenessBound(cfg.stalenessPeriods),
		controlplane.WithFailsafeBudget(cfg.failsafeBudget),
		controlplane.WithRPCRetry(cfg.rpcRetries, cfg.rpcRetryBackoff),
		controlplane.WithWireCodec(cfg.wireCodec),
		// Shared by workers and clients: workers roll rack digests into the
		// fleet rollup, clients request them in-band on gather frames.
		controlplane.WithDigests(cfg.fleetDigests),
		controlplane.WithFleetHistory(cfg.fleetHistory),
	}
	// The flight recorder retains each control period's trace + explain
	// records and serves them on the telemetry server's debug endpoints.
	var recorder *flightrec.Recorder
	if cfg.traceBuffer > 0 {
		recorder = flightrec.NewRecorder(cfg.traceBuffer)
		opts = append(opts, controlplane.WithFlightRecorder(recorder))
		if ts != nil {
			h := recorder.Handler()
			ts.Handle("/debug/periods", h)
			ts.Handle("/debug/periods/", h)
			ts.Handle("/debug/trace.json", h)
		}
	}

	// The safety-SLO tracker watches rack staleness through the room worker
	// and folds alert state into /healthz; rules come from -slo-rules or the
	// built-in defaults.
	var rules []slo.Rule
	if cfg.sloRulesFile != "" {
		var err error
		if rules, err = slo.LoadRulesFile(cfg.sloRulesFile); err != nil {
			return err
		}
	}
	tracker, err := slo.New(slo.Config{
		Rules:    rules,
		Registry: reg,
		Recorder: recorder,
		Logger:   logger,
	})
	if err != nil {
		return err
	}
	opts = append(opts, controlplane.WithSLO(tracker))
	if ts != nil {
		ts.Handle("/debug/slo", tracker.Handler())
		ts.AddLeveledCheck("slo", tracker.HealthCheck)
	}

	// Four single-supply servers, two per rack; SA runs a high-priority
	// workload. Each server gets its own PI capping controller, closing the
	// loop the paper's production system closes with real node managers.
	type node struct {
		srv  *server.Server
		ctrl *capping.Controller
	}
	var mu sync.Mutex // controllers are not concurrency-safe
	nodes := map[string]*node{}
	mkNode := func(serverID string, util float64) {
		s, err := server.New(server.Config{
			ID:        serverID,
			Model:     power.DefaultServerModel(),
			Supplies:  []server.Supply{{ID: serverID + "-ps", Split: 1}},
			Telemetry: reg,
		})
		if err != nil {
			panic(err)
		}
		s.SetUtilization(util)
		nodes[serverID+"-ps"] = &node{
			srv:  s,
			ctrl: capping.MustNew(s, capping.Config{Telemetry: reg, ID: serverID}),
		}
	}
	mkNode("SA", 1)
	mkNode("SB", 0.9)
	mkNode("SC", 0.8)
	mkNode("SD", 0.9)

	sink := func(supplyID string, b power.Watts) {
		mu.Lock()
		defer mu.Unlock()
		if n, ok := nodes[supplyID]; ok {
			n.ctrl.SetBudget(supplyID, b)
		}
	}
	mkLeaf := func(id, srv string, prio core.Priority, demand power.Watts) *core.Node {
		return core.NewLeaf(id, core.SupplyLeaf{
			SupplyID: id, ServerID: srv, Priority: prio, Share: 1,
			CapMin: 270, CapMax: 490, Demand: demand,
		})
	}
	left, err := controlplane.NewRackWorker("rack-left",
		core.NewShifting("rack-left", 750,
			mkLeaf("SA-ps", "SA", 1, 430), mkLeaf("SB-ps", "SB", 0, 430)),
		core.GlobalPriority, sink, opts...)
	if err != nil {
		return err
	}
	right, err := controlplane.NewRackWorker("rack-right",
		core.NewShifting("rack-right", 750,
			mkLeaf("SC-ps", "SC", 0, 430), mkLeaf("SD-ps", "SD", 0, 430)),
		core.GlobalPriority, sink, opts...)
	if err != nil {
		return err
	}
	leftSrv, err := controlplane.ServeRack(left, "127.0.0.1:0", opts...)
	if err != nil {
		return err
	}
	defer leftSrv.Close()
	rightSrv, err := controlplane.ServeRack(right, "127.0.0.1:0", opts...)
	if err != nil {
		return err
	}
	defer rightSrv.Close()

	leftClient := controlplane.DialRack(leftSrv.Addr(), time.Second, opts...)
	defer leftClient.Close()
	rightClient := controlplane.DialRack(rightSrv.Addr(), time.Second, opts...)
	defer rightClient.Close()

	roomTree := core.NewShifting("contractual", 1400,
		core.NewProxy("rack-left", core.NewSummary()),
		core.NewProxy("rack-right", core.NewSummary()),
	)
	room, err := controlplane.NewRoomWorker(roomTree, 1240, core.GlobalPriority,
		map[string]controlplane.RackClient{
			"rack-left": leftClient, "rack-right": rightClient,
		}, opts...)
	if err != nil {
		return err
	}
	if ts != nil {
		ts.AddHealthCheck("room", room.Healthy)
		ts.AddWarnCheck("room-degraded", room.Degraded)
		ts.AddHealthDetail("racks", func() any { return room.RackFreshness() })
		if cfg.fleetDigests {
			fh := fleetobs.Handler(room.FleetReport, room.FleetHistory())
			ts.Handle("/debug/fleet", fh)
			ts.Handle("/debug/fleet/", fh)
			ts.AddHealthDetail("fleet", func() any { return room.LastStats().Fleet })
		}
	}

	fmt.Printf("rack workers on %s and %s; control period every 2s; Ctrl-C to stop\n",
		leftSrv.Addr(), rightSrv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(2 * time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-sig:
			fmt.Println("\nshutting down")
			return nil
		case <-ticker.C:
			// Per-second sensing compressed into the demo period: sample
			// sensors and run one PI iteration per server, then the room
			// worker's gather → allocate → push cycle.
			mu.Lock()
			for _, n := range nodes {
				n.ctrl.Sense()
				n.ctrl.Iterate()
			}
			mu.Unlock()
			if _, _, err := room.RunPeriod(context.Background()); err != nil {
				logger.Error("control period failed", "err", err)
			}
		}
	}
}
