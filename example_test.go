package capmaestro_test

import (
	"fmt"
	"sort"

	"capmaestro"
)

// ExampleAllocate reproduces the paper's Table 1: under a 1240 W budget,
// global priority-aware capping gives the high-priority server its full
// demand by throttling low-priority servers anywhere in the tree.
func ExampleAllocate() {
	leaf := func(id string, prio capmaestro.Priority) *capmaestro.Node {
		return capmaestro.NewLeaf(id, capmaestro.SupplyLeaf{
			SupplyID: id, ServerID: id, Priority: prio, Share: 1,
			CapMin: 270, CapMax: 490, Demand: 430,
		})
	}
	tree := capmaestro.NewShifting("top", 1400,
		capmaestro.NewShifting("left", 750, leaf("SA", 1), leaf("SB", 0)),
		capmaestro.NewShifting("right", 750, leaf("SC", 0), leaf("SD", 0)),
	)
	alloc, err := capmaestro.Allocate(tree, 1240, capmaestro.GlobalPriority)
	if err != nil {
		panic(err)
	}
	var ids []string
	for id := range alloc.SupplyBudgets {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		fmt.Printf("%s: %.0f W\n", id, float64(alloc.Budget(id)))
	}
	// Output:
	// SA: 430 W
	// SB: 270 W
	// SC: 270 W
	// SD: 270 W
}

// ExampleAllocateWithSPO shows stranded power being reclaimed: server a's
// Y-side budget exceeds what its intrinsic 70/30 split lets it draw, so
// the optimization hands the excess to server b on the same feed.
func ExampleAllocateWithSPO() {
	x := capmaestro.NewShifting("x", 0,
		capmaestro.NewLeaf("a-x", capmaestro.SupplyLeaf{
			SupplyID: "a-x", ServerID: "a", Share: 0.7,
			CapMin: 270, CapMax: 490, Demand: 480}),
	)
	y := capmaestro.NewShifting("y", 0,
		capmaestro.NewLeaf("a-y", capmaestro.SupplyLeaf{
			SupplyID: "a-y", ServerID: "a", Share: 0.3,
			CapMin: 270, CapMax: 490, Demand: 480}),
		capmaestro.NewLeaf("b-y", capmaestro.SupplyLeaf{
			SupplyID: "b-y", ServerID: "b", Share: 1,
			CapMin: 270, CapMax: 490, Demand: 490}),
	)
	trees := []*capmaestro.Node{x, y}
	budgets := []capmaestro.Watts{210, 600}
	_, report, err := capmaestro.AllocateWithSPO(trees, budgets, capmaestro.GlobalPriority)
	if err != nil {
		panic(err)
	}
	for _, s := range report.Stranded {
		fmt.Printf("%s stranded %.0f W\n", s.SupplyID, float64(s.Stranded))
	}
	// Output:
	// a-y stranded 46 W
}

// ExampleNormalizedThroughput shows the calibrated power→performance
// model: the paper's 314 W budget against a 420 W demand costs 18%
// throughput.
func ExampleNormalizedThroughput() {
	fmt.Printf("%.2f\n", capmaestro.NormalizedThroughput(314, 420))
	// Output:
	// 0.82
}
